"""Declarative system registry: named, serializable ``SystemSpec``s.

The paper's evaluated systems (Baseline / Comp / Comp+W / Comp+WF) and
the repo's ablation variants used to be wired ad hoc -- a factory in
``repro.core.config``, override kwargs scattered across
``lifetime/systems.py``, the CLI, and 30+ benchmark modules.  The
registry replaces that with one table of :class:`SystemSpec` entries
consumed uniformly everywhere:

    >>> from repro.engine import get_system, system_names
    >>> get_system("comp_wf").config.use_dead_block_revival
    True
    >>> "comp_wf_safer32" in system_names()
    True

Specs are plain frozen dataclasses wrapping a
:class:`~repro.core.config.SystemConfig`; ``to_dict``/``from_dict``
round-trip them through JSON for sweep manifests and result metadata.
``python -m repro systems`` prints the table with each spec's stage
composition.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from ..core import config as _config
from ..core.config import SystemConfig


@dataclass(frozen=True)
class SystemSpec:
    """One named system: a config plus registry metadata."""

    name: str
    description: str
    config: SystemConfig
    #: Free-form grouping labels (``paper``, ``ablation``, ``extension``).
    tags: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.name != self.config.name:
            raise ValueError(
                f"spec name {self.name!r} != config name {self.config.name!r}"
            )

    def configured(self, **overrides) -> SystemConfig:
        """The spec's config, with optional knob overrides applied."""
        if not overrides:
            return self.config
        return self.config.with_overrides(**overrides)

    def stage_summary(self) -> list[str]:
        """One line per write-path stage, as composed for this system."""
        from ..core.controller import CompressedPCMController
        from ..pcm import EnduranceModel
        import numpy as np

        controller = CompressedPCMController(
            config=self.config,
            n_lines=8,
            endurance_model=EnduranceModel(mean=10**7),
            rng=np.random.default_rng(0),
        )
        return controller.pipeline.describe()

    def to_dict(self) -> dict:
        """JSON-serializable form (sweep manifests, result metadata)."""
        return {
            "name": self.name,
            "description": self.description,
            "tags": list(self.tags),
            "config": dataclasses.asdict(self.config),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SystemSpec":
        """Rebuild a spec serialized by :meth:`to_dict`."""
        return cls(
            name=payload["name"],
            description=payload["description"],
            config=SystemConfig(**payload["config"]),
            tags=tuple(payload.get("tags", ())),
        )


_REGISTRY: dict[str, SystemSpec] = {}


def register_system(spec: SystemSpec, replace: bool = False) -> SystemSpec:
    """Add a spec to the registry (``replace=True`` to overwrite)."""
    if not replace and spec.name in _REGISTRY:
        raise ValueError(f"system {spec.name!r} is already registered")
    _REGISTRY[spec.name] = spec
    return spec


def get_system(name: str) -> SystemSpec:
    """Look a spec up by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown system {name!r}; choose from {sorted(_REGISTRY)}"
        ) from None


def system_names(tag: str | None = None) -> tuple[str, ...]:
    """Registered names, optionally filtered by tag, in insertion order."""
    return tuple(
        name for name, spec in _REGISTRY.items()
        if tag is None or tag in spec.tags
    )


def list_systems(tag: str | None = None) -> tuple[SystemSpec, ...]:
    """Registered specs, optionally filtered by tag, in insertion order."""
    return tuple(
        spec for spec in _REGISTRY.values() if tag is None or tag in spec.tags
    )


def resolve_config(system: str | SystemConfig, **overrides) -> SystemConfig:
    """Normalize a system name or config into a ready config.

    This is the single entry point ``build_simulator``, the CLI, and
    the benchmarks funnel through: names go through the registry,
    explicit configs pass straight through (with overrides applied).
    """
    if isinstance(system, SystemConfig):
        return system.with_overrides(**overrides) if overrides else system
    return get_system(system).configured(**overrides)


# -- the registry table ----------------------------------------------------

#: The four evaluated systems in the paper's presentation order.
PAPER_SYSTEMS = ("baseline", "comp", "comp_w", "comp_wf")

register_system(SystemSpec(
    name="baseline",
    description="DW + Start-Gap + ECP-6, no compression (Table II baseline)",
    config=_config.baseline(),
    tags=("paper",),
))
register_system(SystemSpec(
    name="comp",
    description="naive compression: window sliding only (Section V-A.1)",
    config=_config.comp(),
    tags=("paper",),
))
register_system(SystemSpec(
    name="comp_w",
    description="compression + intra-line wear-leveling (Section V-A.2)",
    config=_config.comp_w(),
    tags=("paper",),
))
register_system(SystemSpec(
    name="comp_wf",
    description="the full design: + dead-block revival (Section V-A.3)",
    config=_config.comp_wf(),
    tags=("paper",),
))

# Ablation variants: the full system with exactly one knob changed.
register_system(SystemSpec(
    name="comp_wf_no_heuristic",
    description="Comp+WF without the Figure 8 flip-control heuristic",
    config=_config.comp_wf(name="comp_wf_no_heuristic", use_heuristic=False),
    tags=("ablation",),
))
register_system(SystemSpec(
    name="comp_wf_safer32",
    description="Comp+WF over SAFER-32 instead of ECP-6 (Section III-A.4)",
    config=_config.comp_wf(name="comp_wf_safer32", correction_scheme="safer32"),
    tags=("ablation",),
))
register_system(SystemSpec(
    name="comp_wf_aegis",
    description="Comp+WF over Aegis 17x31 instead of ECP-6 (Section III-A.4)",
    config=_config.comp_wf(name="comp_wf_aegis", correction_scheme="aegis17x31"),
    tags=("ablation",),
))

# Extensions beyond the paper's configuration.
register_system(SystemSpec(
    name="comp_wf_freep",
    description="Comp+WF + FREE-p remap spares (5% spare lines)",
    config=_config.comp_wf(name="comp_wf_freep", spare_line_fraction=0.05),
    tags=("extension",),
))
register_system(SystemSpec(
    name="comp_wf_regions",
    description="Comp+WF with 4-region scalable Start-Gap",
    config=_config.comp_wf(name="comp_wf_regions", start_gap_regions=4),
    tags=("extension",),
))
register_system(SystemSpec(
    name="comp_wf_hybrid",
    description="Comp+WF behind a 16-line content-aware DRAM tier (CARAM)",
    config=_config.comp_wf(name="comp_wf_hybrid", tier_lines=16),
    tags=("extension",),
))

# Energy-aware encoding family (repro.energy): WIRE-style inversion and
# restricted coset coding composed with the paper's systems.  Encoded
# systems are excluded from the differential fuzz oracle's default set
# (repro.validate.fuzz) -- the reference model does not model encoding.
register_system(SystemSpec(
    name="baseline_wire",
    description="baseline + WIRE energy-weighted inversion coding",
    config=_config.baseline(name="baseline_wire", encoding="wire"),
    tags=("extension", "energy"),
))
register_system(SystemSpec(
    name="comp_wf_wire",
    description="Comp+WF + WIRE energy-weighted inversion coding",
    config=_config.comp_wf(name="comp_wf_wire", encoding="wire"),
    tags=("extension", "energy"),
))
register_system(SystemSpec(
    name="comp_coset",
    description="Comp + restricted coset coding through compression slack",
    config=_config.comp(name="comp_coset", encoding="coset"),
    tags=("extension", "energy"),
))
register_system(SystemSpec(
    name="comp_wf_coset",
    description="Comp+WF + restricted coset coding through compression slack",
    config=_config.comp_wf(name="comp_wf_coset", encoding="coset"),
    tags=("extension", "energy"),
))

# WoLFRaM PAD backend variants: every system above gains a
# ``*_wolfram`` twin running the programmable-address-decoder backend
# (:mod:`repro.wearleveling.wolfram`) in place of Start-Gap + FREE-p --
# same compression / encoding / correction stages, different
# wear-leveling and remap-to-spare substrate.  The 4-region spec is
# excluded (regions are a Start-Gap scaling mechanism the PAD table
# subsumes; the config layer rejects the combination).  Twins are
# extensions regardless of their base's grouping (a ``paper`` system's
# twin is *not* a paper system), keeping ``system_names(tag="paper")``
# the paper's exact four; secondary tags like ``energy`` carry over.
# Tagged ``wolfram`` so tooling can select backends by tag; the
# differential fuzz oracle's *default* set stays Start-Gap-only and
# covers the PAD backend via its explicit ``wl_backend`` override.
for _base in list(_REGISTRY.values()):
    if _base.config.start_gap_regions > 1:
        continue
    _carried = tuple(
        tag for tag in _base.tags if tag not in ("paper", "ablation", "extension")
    )
    register_system(SystemSpec(
        name=f"{_base.name}_wolfram",
        description=f"{_base.description} -- WoLFRaM PAD backend",
        config=_base.config.with_overrides(
            name=f"{_base.name}_wolfram", wl_backend="wolfram"
        ),
        tags=_carried + ("extension", "wolfram"),
    ))
del _base, _carried
