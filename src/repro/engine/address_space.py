"""Shardable logical address space: ranges, shard maps, translation.

The paper evaluates one bank group with one contiguous address space;
the service mode (:mod:`repro.service`) simulates a *fleet* of them.
The bridge is this module: a :class:`ShardMap` partitions the logical
line space ``[0, total_lines)`` into contiguous per-shard
:class:`AddressRange`\\ s, and translates global line numbers (what a
request stream uses) to shard-local ones (what one controller's
pipeline sees) and back.

The design invariant that keeps everything bit-identical: a shard is a
*complete* address space of its own.  Each shard runs the full,
unmodified write pipeline over local lines ``[0, len(range))`` -- the
same code, the same Start-Gap rotation, the same correction state --
so a shard's results are exactly those of an independent single-bank
controller of that size replaying the same sub-stream.  Sharding is
pure routing plus translation; nothing inside the pipeline knows the
global space exists.

Seeds derive per shard via :func:`shard_seeds`: a 1-shard map reuses
the base seed unchanged (so a 1-shard service reproduces the existing
golden digests bit-for-bit), while a K-shard map spawns independent
seeds through :func:`repro.rng.spawn_seeds`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..rng import spawn_seeds


@dataclass(frozen=True)
class AddressRange:
    """A half-open range ``[start, stop)`` of logical line numbers."""

    start: int
    stop: int

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ValueError("range start cannot be negative")
        if self.stop <= self.start:
            raise ValueError(
                f"range [{self.start}, {self.stop}) must be non-empty"
            )

    def __len__(self) -> int:
        return self.stop - self.start

    def __contains__(self, line: int) -> bool:
        return self.start <= line < self.stop

    def to_local(self, line: int) -> int:
        """Translate a global line number into this range's local space."""
        if not self.start <= line < self.stop:
            raise IndexError(
                f"line {line} outside address range "
                f"[{self.start}, {self.stop})"
            )
        return line - self.start

    def to_global(self, local: int) -> int:
        """Translate a range-local line number back to the global space."""
        if not 0 <= local < len(self):
            raise IndexError(
                f"local line {local} outside range of {len(self)} lines"
            )
        return self.start + local


class ShardMap:
    """Contiguous, balanced partition of ``[0, total_lines)`` into shards.

    The first ``total_lines % shards`` shards hold one extra line, so
    shard sizes differ by at most one and the partition is fully
    determined by ``(total_lines, shards)`` -- two processes given the
    same pair always agree on routing.  Translation is O(1) arithmetic.
    """

    def __init__(self, total_lines: int, shards: int) -> None:
        if total_lines < 1:
            raise ValueError("need at least one logical line")
        if shards < 1:
            raise ValueError("need at least one shard")
        if shards > total_lines:
            raise ValueError(
                f"cannot split {total_lines} lines into {shards} shards "
                "(a shard would own no lines)"
            )
        self.total_lines = total_lines
        self.shards = shards
        base, extra = divmod(total_lines, shards)
        ranges = []
        start = 0
        for shard in range(shards):
            size = base + (1 if shard < extra else 0)
            ranges.append(AddressRange(start, start + size))
            start += size
        self.ranges: tuple[AddressRange, ...] = tuple(ranges)
        # Boundaries for O(1) arithmetic routing: the first `extra`
        # shards are (base+1)-sized, the rest base-sized.
        self._base = base
        self._extra = extra
        self._pivot = extra * (base + 1)  # first line owned by a base-sized shard

    def __len__(self) -> int:
        return self.shards

    def range_of(self, shard: int) -> AddressRange:
        """The address range shard ``shard`` owns."""
        return self.ranges[shard]

    def lines_of(self, shard: int) -> int:
        """How many logical lines shard ``shard`` owns."""
        return len(self.ranges[shard])

    def shard_of(self, line: int) -> int:
        """The shard owning a global line number (O(1))."""
        if not 0 <= line < self.total_lines:
            raise IndexError(
                f"line {line} outside address space [0, {self.total_lines})"
            )
        if line < self._pivot:
            return line // (self._base + 1)
        return self._extra + (line - self._pivot) // self._base

    def to_local(self, line: int) -> tuple[int, int]:
        """Global line -> ``(shard, local line)``."""
        shard = self.shard_of(line)
        return shard, line - self.ranges[shard].start

    def to_global(self, shard: int, local: int) -> int:
        """``(shard, local line)`` -> global line."""
        return self.ranges[shard].to_global(local)

    def shard_seeds(self, seed: int) -> list[int]:
        """Deterministic per-shard seeds derived from one base seed."""
        return shard_seeds(seed, self.shards)

    def partition(self, writes) -> list[list]:
        """Route an iterable of ``(line, data)`` pairs into per-shard lists.

        Each shard's list holds ``(local_line, data)`` pairs in stream
        order -- exactly the sub-stream an independent controller of
        that shard's size would replay.  Accepts ``WriteBack``-shaped
        objects (``.line`` / ``.data``) as well as bare pairs.
        """
        buckets: list[list] = [[] for _ in range(self.shards)]
        for request in writes:
            if hasattr(request, "line"):
                line, data = request.line, request.data
            else:
                line, data = request
            shard, local = self.to_local(line)
            buckets[shard].append((local, data))
        return buckets

    def partition_trace(self, trace) -> list:
        """Split a :class:`~repro.traces.trace.Trace` into per-shard traces.

        Sub-traces keep the workload name, use local addresses, and are
        sized to the shard's line count, so each drops straight into a
        single-bank :class:`~repro.lifetime.LifetimeSimulator`.
        """
        from ..traces.trace import Trace, WriteBack

        parts = [
            Trace(workload=trace.workload, n_lines=self.lines_of(shard))
            for shard in range(self.shards)
        ]
        for write in trace:
            shard, local = self.to_local(write.line)
            parts[shard].append(WriteBack(line=local, data=write.data))
        return parts

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return (
            f"ShardMap(total_lines={self.total_lines}, shards={self.shards})"
        )


def shard_seeds(seed: int, shards: int) -> list[int]:
    """Per-shard controller seeds derived from one base seed.

    A single shard keeps the base seed *unchanged* -- that is what makes
    a 1-shard service bit-identical to the monolithic controller (and
    keeps the golden-trace digests valid).  Multiple shards get
    independent seeds via :func:`repro.rng.spawn_seeds`, so shard
    endurance draws and workload streams never correlate.
    """
    if shards < 1:
        raise ValueError("need at least one shard")
    if shards == 1:
        return [seed]
    return spawn_seeds(seed, shards)
