"""The composable write-path stages (Section III, decomposed).

Each stage owns one paper mechanism and the statistics counters that
belong to it.  Stages are small, independently testable objects that
share an :class:`~repro.engine.context.EngineState` and communicate
per-write through a :class:`~repro.engine.context.WriteContext`; the
:class:`~repro.engine.pipeline.WritePipeline` sequences them:

==================  ====================================================
stage               mechanism
==================  ====================================================
:class:`CompressStage`    best-of-BDI/FPC selection + Figure 8 heuristic
:class:`PlacementStage`   window fit/slide (Figure 4) + intra-line WL
:class:`EncodingStage`    WIRE / restricted-coset write-energy encoding
                          (identity pass-through when encoding is off)
:class:`ProgramStage`     differential write restricted to the window
:class:`CorrectionStage`  ECP/SAFER/Aegis/SECDED feasibility, commit,
                          and FREE-p remap-to-spare
:class:`RemapStage`       Start-Gap moves, dead-block gate/revival, and
                          the fallback-to-compressed rescue (the "F" in
                          Comp+WF)
==================  ====================================================

The stage boundaries are exactly the seams the related designs swap:
WoLFRaM replaces the remap/correction pair (see
:class:`WolframPlacementStage` / :class:`WolframRemapStage`, selected
by ``config.wl_backend``), CARAM the compress stage.
"""

from __future__ import annotations

import numpy as np

from ..core.window import (
    LINE_BYTES,
    faults_in_window,
    find_window,
    place_bytes,
    window_mask,
)
from .context import EngineState, WriteContext


class Stage:
    """Base class: a named write-path stage bound to an engine state."""

    name: str = "stage"

    def __init__(self, state: EngineState) -> None:
        self.state = state

    def describe(self) -> str:
        """One-line human description for the ``systems`` listing."""
        return self.name


class CompressStage(Stage):
    """Chooses the storage format: best-of compression + Figure 8.

    Populates ``ctx.compressed``, ``ctx.result``, ``ctx.payload``,
    ``ctx.size`` and ``ctx.step``.  Owns the ``heuristic_steps`` and
    ``sc_updates`` counters.
    """

    name = "compress"

    def __init__(self, state: EngineState) -> None:
        super().__init__(state)
        # Bound once: the content-addressed cache (when a
        # CachingCompressor wraps the best-of policy), else None.
        self._cache = state.compressor if hasattr(state.compressor, "hits") else None

    def run(self, ctx: WriteContext) -> None:
        """Fix the write's storage format on the context."""
        state = self.state
        meta = state.metadata[ctx.physical]
        self._apply_format(ctx, *self._choose_format(meta, ctx.data))
        self._mirror_cache_counters()

    def run_batch(self, ctxs: list[WriteContext]) -> None:
        """Fix the storage format of a whole batch of contexts.

        One ``compress_batch`` call replaces the per-write ``compress``
        calls; the Figure 8 decisions then replay in batch order, so
        the per-line metadata (``sc``), the heuristic counters, and --
        because the batched cache replays its probe/evict bookkeeping
        serially -- the cache counters all land exactly where the
        equivalent ``run`` loop would put them.
        """
        state = self.state
        if state.config.use_compression:
            batch = state.compressor.compress_batch([ctx.data for ctx in ctxs])
            for ctx, result in zip(ctxs, batch):
                meta = state.metadata[ctx.physical]
                self._apply_format(ctx, *self._decide(meta, result))
        else:
            for ctx in ctxs:
                self._apply_format(ctx, False, None, 0)
        self._mirror_cache_counters()

    def apply_decision(self, ctx: WriteContext, result) -> None:
        """Fix one context's format from a precomputed compression.

        The out-of-order batch scheduler gathers the compressions of a
        whole segment in one ``compress_batch`` call but must replay the
        Figure 8 decisions strictly in *program* order, interleaved with
        the metadata commits -- a collision successor's decision reads
        the ``sc``/``stored_size`` its predecessor's commit just wrote,
        so :meth:`run_batch` (which decides everything up front) cannot
        serve it.  This is the per-op decision half, identical to what
        :meth:`run` does after compressing.  ``result`` is ``None`` when
        compression is off.
        """
        if result is None:
            self._apply_format(ctx, False, None, 0)
            return
        meta = self.state.metadata[ctx.physical]
        self._apply_format(ctx, *self._decide(meta, result))

    def mirror_cache_counters(self) -> None:
        """Publish the compression-cache counters into the stats."""
        self._mirror_cache_counters()

    def _apply_format(self, ctx: WriteContext, compressed, result, step) -> None:
        ctx.compressed = compressed
        ctx.result = result
        ctx.step = step
        if compressed:
            ctx.payload = result.payload
            ctx.size = result.size_bytes
        else:
            ctx.payload = ctx.data
            ctx.size = LINE_BYTES

    def _mirror_cache_counters(self) -> None:
        # Mirror the cache counters into the stats every write so they
        # are always current when a caller snapshots ControllerStats.
        cache = self._cache
        if cache is not None:
            stats = self.state.stats
            stats.compression_cache_hits = cache.hits
            stats.compression_cache_misses = cache.misses

    def _choose_format(self, meta, data: bytes):
        """Compression decision: (store compressed?, result, Fig-8 step)."""
        state = self.state
        if not state.config.use_compression:
            return False, None, 0
        return self._decide(meta, state.compressor.compress(data))

    def _decide(self, meta, result):
        """The post-compression half of the decision (shared with batch)."""
        state = self.state
        if result.size_bytes >= LINE_BYTES:
            return False, result, 0
        if state.heuristic is None:
            return True, result, 0
        sc_before = meta.sc
        decision = state.heuristic.decide(meta, result.size_bytes)
        state.stats.sc_updates += meta.sc != sc_before
        state.stats.count_step(decision.step)
        return decision.compress, result, decision.step

    def describe(self) -> str:
        config = self.state.config
        if not config.use_compression:
            return "compress: off (raw 64B lines)"
        heuristic = (
            f"fig8 heuristic T1={config.threshold1} T2={config.threshold2}"
            if config.use_heuristic
            else "always-compress"
        )
        members = "/".join(m.name for m in self.state.compressor.members)
        return f"compress: best-of({members}), {heuristic}"


class PlacementStage(Stage):
    """Window placement (Figure 4) and intra-line wear-leveling.

    Supplies the initial window hint (the bank's rotation offset under
    Comp+W, else the line's current pointer), finds a feasible window
    for the current payload, and advances the rotation counters after a
    successful write.  Owns the ``window_slides`` counter.
    """

    name = "placement"

    def initial_hint(self, physical: int, ctx: WriteContext) -> int:
        """Where the window search should start for this write."""
        state = self.state
        if not ctx.compressed:
            return 0
        if state.intra_wl is not None:
            return state.intra_wl.offset(state.bank_of(physical))
        return state.metadata[physical].start_pointer

    def place(self, physical: int, ctx: WriteContext) -> int | None:
        """First feasible window start for the payload, or None."""
        state = self.state
        ctx.line_faults = state.memory.fault_count(physical)
        if ctx.line_faults <= state.scheme.deterministic_capability:
            # Any placement works (find_window's fast path, reached here
            # without materializing the fault positions -- the maintained
            # per-block count makes this O(1)).
            start = ctx.hint % LINE_BYTES
        else:
            faults = state.memory.fault_positions(physical)
            start = find_window(faults, ctx.size, state.scheme, start_hint=ctx.hint)
        if start is None:
            return None
        if ctx.compressed and start != state.metadata[physical].start_pointer:
            state.stats.window_slides += 1
        return start

    def note_commit(self, physical: int) -> None:
        """Advance the intra-line rotation counters after a landed write."""
        state = self.state
        if state.intra_wl is not None:
            state.intra_wl.record_write(state.bank_of(physical))

    def describe(self) -> str:
        config = self.state.config
        intra = (
            f"intra-line WL (counter limit {config.intra_counter_limit})"
            if config.use_intra_wear_leveling
            else "pointer-stable windows"
        )
        return f"placement: circular window fit/slide, {intra}{self._slice()}"

    def _slice(self) -> str:
        """Shard-slice label when the engine owns a range (else empty)."""
        rng = self.state.address_range
        if rng is None:
            return ""
        return f", slice [{rng.start}, {rng.stop})"


class EncodingStage(Stage):
    """Write-energy-reducing line encoding (WIRE / restricted coset).

    Sits between placement and program: once the window is fixed, the
    payload is laid into the *logical* line image and the encoder
    re-chooses the coset selectors of the words the window fully
    covers.  Because every transform is a per-word XOR involution,
    words outside the window re-encode to exactly their stored cells,
    so the program stage's update mask stays valid bit-for-bit -- with
    no encoder (``config.encoding == "none"``) this stage is a plain
    ``place_bytes`` and the write path is byte-identical to the
    pre-encoding engine.  Owns the ``encoding_flag_set_flips`` /
    ``encoding_flag_reset_flips`` / ``encoded_words`` counters.
    """

    name = "encoding"

    def build_target(
        self, physical: int, ctx: WriteContext, start: int, stored: np.ndarray
    ) -> np.ndarray:
        """The cell image to program for this write."""
        state = self.state
        encoder = state.encoder
        if encoder is None:
            return place_bytes(stored, ctx.payload, start)
        logical = encoder.decode(physical, stored)
        target_logical = place_bytes(logical, ctx.payload, start)
        outcome = encoder.encode(
            physical, stored, target_logical, start, ctx.size, ctx.compressed
        )
        stats = state.stats
        stats.encoding_flag_set_flips += outcome.flag_set_flips
        stats.encoding_flag_reset_flips += outcome.flag_reset_flips
        stats.encoded_words += outcome.encoded_words
        return outcome.target

    def decode_read(self, physical: int, bits: np.ndarray) -> np.ndarray:
        """Undo the line encoding on the read path (identity when off)."""
        encoder = self.state.encoder
        if encoder is None:
            return bits
        return encoder.decode(physical, bits)

    def describe(self) -> str:
        encoder = self.state.encoder
        if encoder is None:
            return "encoding: off (plain differential write)"
        return f"encoding: {encoder.describe()}"


class ProgramStage(Stage):
    """Issues the differential write restricted to the window.

    Owns the flip counters (``total_flips``, ``set_flips``,
    ``reset_flips``); the cell image comes from the
    :class:`EncodingStage` (a plain payload overlay when encoding is
    off).
    """

    name = "program"

    def __init__(
        self, state: EngineState, encoding: "EncodingStage | None" = None
    ) -> None:
        super().__init__(state)
        self.encoding = encoding or EncodingStage(state)

    def program(
        self, physical: int, ctx: WriteContext, start: int
    ) -> tuple[np.ndarray, int]:
        """Write the payload at ``start``; returns (target bits, flips)."""
        state = self.state
        stored = state.memory.read_bits(physical)
        target = self.encoding.build_target(physical, ctx, start, stored)
        # A full-line window masks nothing; skip building/applying it.
        mask = window_mask(start, ctx.size) if ctx.size != LINE_BYTES else None
        outcome = state.memory.write(physical, target, update_mask=mask)
        state.stats.total_flips += outcome.programmed_flips
        state.stats.set_flips += outcome.set_flips
        state.stats.reset_flips += outcome.reset_flips
        worn = outcome.new_fault_positions.size
        if worn:
            ctx.line_faults += worn
        return target, outcome.programmed_flips

    def describe(self) -> str:
        return "program: chip-level differential write (window-masked)"


class CorrectionStage(Stage):
    """Post-write feasibility, metadata commit, and FREE-p remap.

    Re-checks the faults that fell inside the window after programming
    (cells can wear out *during* the write), commits the 13-bit line
    metadata and the scheme's repair state on success, and -- with the
    FREE-p extension enabled -- retires an unplaceable block to a spare
    line.  Owns the commit counters (``compressed_writes``,
    ``uncompressed_writes``, ``start_pointer_updates``,
    ``encoding_updates``) and ``remaps``.
    """

    name = "correction"

    def verify(self, physical: int, ctx: WriteContext, start: int) -> bool:
        """Whether the scheme can mask the window's post-write faults."""
        state = self.state
        if ctx.line_faults <= state.scheme.deterministic_capability:
            return True  # even with every fault inside the window
        faults_after = state.memory.fault_positions(physical)
        inside = faults_in_window(faults_after, start, ctx.size)
        return inside.size <= state.scheme.deterministic_capability or (
            state.scheme.can_correct(inside)
        )

    def commit(
        self, physical: int, ctx: WriteContext, start: int, target: np.ndarray
    ) -> None:
        """Update line metadata and repair state for a landed write."""
        self.commit_metadata(physical, ctx, start)
        self.commit_repairs(physical, ctx, start, target)

    def commit_metadata(
        self, physical: int, ctx: WriteContext, start: int
    ) -> None:
        """The metadata half of the commit: 13-bit line state + counters.

        Split from :meth:`commit_repairs` for the out-of-order batch
        scheduler, which must settle metadata in *program* order (a
        later write to the same line reads ``stored_size``/``sc`` during
        its own compression decision) while the repair refresh needs the
        *post-write* fault state of an execution that happens later.
        Nothing between the two halves reads the repair dict, so the
        split is unobservable; the serial path calls both back to back.
        """
        state = self.state
        meta = state.metadata[physical]
        new_pointer = start if ctx.compressed else 0
        new_encoding = (
            state.compressor.encode_metadata(ctx.result)
            if ctx.compressed and ctx.result is not None
            else meta.encoding
        )
        state.stats.start_pointer_updates += new_pointer != meta.start_pointer
        state.stats.encoding_updates += (
            new_encoding != meta.encoding or ctx.size != meta.stored_size
        )
        meta.start_pointer = new_pointer
        meta.compressed = ctx.compressed
        meta.stored_size = ctx.size
        meta.encoding = new_encoding
        if ctx.compressed:
            state.stats.compressed_writes += 1
        else:
            state.stats.uncompressed_writes += 1

    def commit_repairs(
        self, physical: int, ctx: WriteContext, start: int, target: np.ndarray
    ) -> None:
        """The repair half of the commit: refresh the scheme's state.

        ``ctx.line_faults`` must reflect the line's *post-write* stuck
        count when this runs (the scheme remembers the written value of
        every stuck cell inside the window).
        """
        state = self.state
        if ctx.line_faults:
            mask = window_mask(start, ctx.size)
            faulty = state.memory.faulty_mask(physical) & mask
            positions = np.flatnonzero(faulty)
            state.repairs[physical] = {
                int(position): int(target[position]) for position in positions
            }
            state.stats.repair_commits += 1
        elif state.repairs[physical]:
            state.repairs[physical] = {}

    def try_remap(self, physical: int) -> int | None:
        """FREE-p: retire an unplaceable block to a spare line."""
        state = self.state
        if state.remapper is None:
            return None
        spare = state.remapper.remap(physical, state.memory.faulty_mask(physical))
        if spare is None:
            return None
        state.stats.remaps += 1
        state.death_fault_counts[physical] = state.memory.fault_count(physical)
        return spare

    def describe(self) -> str:
        config = self.state.config
        # Under the WoLFRaM backend the spare pool is a PAD mechanism
        # (named by WolframRemapStage.describe), not FREE-p.
        freep = (
            f" + FREE-p spares ({config.spare_line_fraction:.0%})"
            if config.spare_line_fraction
            and getattr(config, "wl_backend", "startgap_freep") != "wolfram"
            else ""
        )
        return f"correction: {self.state.scheme.name}{freep}"


class RemapStage(Stage):
    """Start-Gap address rotation and the dead-block life cycle.

    Maps logical lines through Start-Gap, reports gap moves that the
    facade must relocate, gates writes into dead blocks (revival is
    only allowed at gap-move checkpoints under Comp+WF), performs the
    fallback-to-compressed rescue, and marks/revives dead blocks.  Owns
    ``deaths`` and ``revivals``.
    """

    name = "remap"

    def map_logical(self, logical: int) -> int:
        """Local logical line -> physical line through Start-Gap + FREE-p."""
        state = self.state
        return state.resolve(state.start_gap.map(logical))

    def map_global(self, line: int) -> int:
        """Global line number -> physical line (identity range unsharded)."""
        return self.map_logical(self.state.local_of(line))

    def on_demand_write(self, logical: int):
        """Advance Start-Gap; returns a GapMovement when the gap moved."""
        return self.state.start_gap.on_write(logical)

    def blocked(self, physical: int, revival_allowed: bool) -> bool:
        """Whether a write into this block must be dropped (dead gate)."""
        state = self.state
        return bool(state.dead[physical]) and not (
            revival_allowed and state.config.use_dead_block_revival
        )

    def fallback_to_compressed(self, ctx: WriteContext) -> bool:
        """Rewrite the context to its compressed form when that rescues it.

        Under the advanced hard-error definition (the "F" in Comp+WF,
        Section III-A.3/4) a block is not given up while the
        *compressed* form still fits, even when the heuristic asked for
        uncompressed storage.  Comp and Comp+W lack this rescue: a
        write that cannot be stored in its chosen format kills the
        block, which is exactly why they lose lifetime on
        less-compressible/volatile data (Figure 10's bzip2/gcc columns).
        """
        state = self.state
        if not (
            state.config.use_dead_block_revival
            and not ctx.compressed
            and ctx.result is not None
            and ctx.result.size_bytes < LINE_BYTES
        ):
            return False
        ctx.compressed = True
        ctx.payload = ctx.result.payload
        ctx.size = ctx.result.size_bytes
        return True

    def mark_dead(self, physical: int) -> None:
        """Record a block death (no feasible placement, no spare)."""
        state = self.state
        if not state.dead[physical]:
            # A failed revival attempt re-kills an already-dead block;
            # only a live->dead transition changes the maintained count.
            state.dead_count += 1
        state.dead[physical] = True
        state.stats.deaths += 1
        state.death_fault_counts[physical] = state.memory.fault_count(physical)
        state.stats.lost_writes += 1

    def revive(self, physical: int) -> None:
        """Bring a dead block back into service after a landed write."""
        state = self.state
        if state.dead[physical]:
            state.dead_count -= 1
        state.dead[physical] = False
        state.stats.revivals += 1

    def describe(self) -> str:
        config = self.state.config
        gap = (
            f"{config.start_gap_regions}-region Start-Gap"
            if config.start_gap_regions > 1
            else "Start-Gap"
        )
        revival = (
            "revival at gap-move checkpoints"
            if config.use_dead_block_revival
            else "no revival"
        )
        rng = self.state.address_range
        shard = "" if rng is None else f", slice [{rng.start}, {rng.stop})"
        return f"remap: {gap} (psi={config.start_gap_psi}), {revival}{shard}"


class WolframPlacementStage(PlacementStage):
    """Placement under the WoLFRaM PAD backend.

    Window search and intra-line rotation are physical-slot mechanisms,
    so they carry over from :class:`PlacementStage` unchanged -- the PAD
    only permutes *which* slot a logical line occupies, exactly as
    Start-Gap does.  The subclass exists so the stage listing names the
    backend and so backend-specific placement policy has a seam to land
    in without touching the Start-Gap path.
    """

    name = "placement"

    def describe(self) -> str:
        return f"{super().describe()}, PAD-permuted rows"


class WolframRemapStage(RemapStage):
    """WoLFRaM PAD address permutation and the dead-block life cycle.

    Drives a :class:`~repro.wearleveling.wolfram.WolframPAD` through the
    same duck-typed surface :class:`RemapStage` uses for Start-Gap
    (``map`` / ``on_write`` / ``logical_of``); a reported
    :class:`~repro.wearleveling.wolfram.PadSwap` carries *two*
    relocation destinations where a gap move carries one, which the
    facade's ``movement.destinations`` loop absorbs.  Dead-block
    gating, revival (at swap checkpoints -- the backend's analogue of
    gap-move checkpoints), and the fallback-to-compressed rescue are
    mapping-independent and inherited unchanged.
    """

    name = "remap"

    def describe(self) -> str:
        config = self.state.config
        state = self.state
        spares = (
            f", PAD spare remap ({config.spare_line_fraction:.0%})"
            if state.remapper is not None
            else ""
        )
        revival = (
            "revival at swap checkpoints"
            if config.use_dead_block_revival
            else "no revival"
        )
        rng = state.address_range
        shard = "" if rng is None else f", slice [{rng.start}, {rng.stop})"
        return (
            f"remap: WoLFRaM PAD (swap period={config.start_gap_psi}), "
            f"{revival}{spares}{shard}"
        )
