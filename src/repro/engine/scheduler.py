"""Out-of-order, dependency-aware batch scheduler (wave execution).

PR 5's batched engine flushed the *entire* pending batch on every
Start-Gap move and every repeated write to one physical line, even
though only the affected row actually depends on the earlier write.
This module replaces those global flushes with per-row dependency
edges: a single program-order scan partitions a request stream into
*waves* -- maximal sets of writes to distinct physical rows -- chains
each same-row collision to the next wave, schedules a placement
perturbation's relocations as ordinary dependency-tracked ops (only
the perturbed slots are affected -- one destination for a Start-Gap
move, two for a WoLFRaM PAD swap; see
:attr:`~repro.wearleveling.start_gap.GapMovement.destinations` and
:attr:`~repro.wearleveling.wolfram.PadSwap.destinations`),
and executes the waves back to back through the vectorized row kernel
while committing results in original program order.

Bit-identity with the serial ``write`` loop rests on a split the
pipeline stages were refactored to expose:

* **Bookkeeping runs eagerly, in program order, during the scan** --
  Start-Gap register advances, the logical shadow store, demand/lost
  accounting, and the dead-block gate all settle exactly where the
  serial loop would settle them, so every later scan step observes
  serial-order state.
* **Format decisions and metadata commits run in program order at
  flush** -- one ``compress_batch`` gather (the content cache replays
  its probe/evict bookkeeping serially inside it), then per op: the
  Figure 8 decision, the placement hint, the window placement, the
  metadata half of the commit, and the intra-line rotation advance.  A
  collision successor therefore reads the ``sc``/``stored_size``/
  ``start_pointer`` its predecessor just committed, exactly as it
  would serially.
* **Only the cell programming runs out of order**, one vectorized
  ``write_rows`` scatter per wave -- and every scheduled op is proven
  to be in the zero-surprise regime first (see :meth:`_eligible`), so
  programming order within a wave cannot matter and the post-write
  verify/rescue/remap/death machinery provably never fires.

Anything outside that regime -- a write near its row's endurance
limit, a relocation into a dead block (the Comp+WF revival
checkpoint) -- cuts a *barrier*: the pending waves flush, the op runs
through the ordinary serial pipeline, and the scan resumes.  The
barrier causes are counted separately (``barrier_gap_move`` /
``barrier_collision`` / ``barrier_ineligible_row``) in
:class:`~repro.engine.context.ControllerStats`.
"""

from __future__ import annotations

from itertools import repeat

from ..core.window import LINE_BYTES
from ..pcm import FaultMode
from ..wearleveling import StartGap
from .context import WriteContext, WriteResult
from .pipeline import WritePipeline


class BatchScheduler:
    """Partitions demand-write streams into waves; executes them batched.

    One instance lives on each
    :class:`~repro.core.controller.CompressedPCMController`, sharing the
    controller's pipeline and logical shadow store.  The scheduler owns
    no simulation state of its own -- between :meth:`run` calls it is
    stateless -- so checkpoints and pickled controllers are unaffected.
    """

    def __init__(
        self, pipeline: WritePipeline, shadow: dict[int, bytes]
    ) -> None:
        self.pipeline = pipeline
        self.state = pipeline.state
        self.shadow = shadow
        #: ``(algorithm, encoding) -> packed 5-bit metadata`` memo; the
        #: packing is a pure function of those two fields, so flush
        #: loops skip the member scan in ``encode_metadata``.
        self._encoding_memo: dict[tuple[str, int], int] = {}
        #: Optional :class:`~repro.engine.bank_parallel.BankParallelExecutor`
        #: -- when set, each wave's row programming fans out across a
        #: process pool over shared-memory bank arrays (opt-in; see
        #: ``CompressedPCMController.enable_bank_parallel``).
        self.bank_parallel = None

    def __getstate__(self):
        state = self.__dict__.copy()
        state["bank_parallel"] = None  # process pools don't pickle
        return state

    def supported(self) -> bool:
        """Whether this engine composition can schedule out of order.

        Mirrors ``step_batch``'s fallback conditions: invariant
        checkers observe per-write state, line encoders keep per-write
        selector state the row kernel does not model, and MLC arrays /
        probabilistic fault modes have no vectorized row kernel.
        """
        memory = self.state.memory
        return (
            not self.pipeline.invariants
            and self.state.encoder is None
            and hasattr(memory, "write_rows")
            and memory.fault_mode is FaultMode.STUCK_AT_LAST
        )

    # -- the program-order scan ------------------------------------------

    def run(self, requests: list[tuple[int, bytes]]) -> list[WriteResult]:
        """Execute a stream of ``(line, data)`` demand writes.

        Returns results in request order, bit-identical to calling
        ``controller.write`` per request (payloads must already be
        validated; the controller does that up front).
        """
        pipeline = self.pipeline
        state = self.state
        stats = state.stats
        start_gap = state.start_gap
        shadow = self.shadow
        dead = state.dead
        local_of = state.local_of
        unsharded = state.address_range is None
        on_demand_write = start_gap.on_write
        start_gap_map = start_gap.map
        # The plain StartGap's per-write bookkeeping (on_write counter
        # advance + map arithmetic) is inlined in the loop; subclasses
        # and RegionStartGap keep the method calls.
        plain_gap = type(start_gap) is StartGap
        if plain_gap:
            sg_psi = start_gap.psi
            sg_n = start_gap.n_lines
            sg_start = start_gap.start
            sg_gap = start_gap.gap
        remapper = state.remapper
        resolve = state.resolve
        revival = state.config.use_dead_block_revival
        memory = state.memory
        row_writes = memory.row_writes
        no_wear_limit = memory.no_wear_limit
        # Amortized eligibility: while every row's write count stays
        # ``margin`` below the weakest wear bound, per-op integer
        # arithmetic proves the wear bound without touching numpy.
        # ``issued`` over-counts writes landed since the last refresh
        # (every request bumps it, landed or not), so the fast check is
        # conservative; when it trips, the bound is recomputed and the
        # exact per-row checks take over for that op.
        nwl_min = int(no_wear_limit.min())
        rw_bound = int(row_writes.max())
        rw_dirty = False
        issued = 0
        # Deaths only happen inside barrier write_line calls (eligible
        # ops are provably uneventful), so while no block is dead the
        # per-op dead-gate lookups can be skipped entirely.
        dead_any = bool(dead.any())

        results: list[WriteResult | None] = [None] * len(requests)
        #: Program-order segment: (result index or -1, row, data, wave).
        ops: list[tuple[int, int, bytes, int]] = []
        #: Pending scheduled writes per row == the next wave for that row.
        pending: dict[int, int] = {}
        pending_get = pending.get
        demand_writes = 0

        def flush() -> None:
            nonlocal rw_dirty
            if ops:
                self._execute(ops, results)
                ops.clear()
                pending.clear()
                rw_dirty = True

        for index, (line, data) in enumerate(requests):
            logical = line if unsharded else local_of(line)
            if plain_gap:
                write_count = start_gap.write_count + 1
                start_gap.write_count = write_count
                if write_count % sg_psi:
                    movement = None
                else:
                    movement = start_gap._move_gap()
                    sg_start = start_gap.start
                    sg_gap = start_gap.gap
            else:
                movement = on_demand_write(logical)
            if movement is not None:
                # Relocate the line(s) the placement perturbation
                # displaced -- one destination for a Start-Gap move, two
                # for a WoLFRaM PAD swap.  Only the perturbed slots are
                # affected; everything already scheduled keeps its
                # resolved row, so no flush is needed unless a
                # relocation itself is ineligible.
                for destination in movement.destinations:
                    reloc_logical = start_gap.logical_of(destination)
                    reloc_data = (
                        None if reloc_logical is None
                        else shadow.get(reloc_logical)
                    )
                    if reloc_data is None:
                        continue
                    stats.gap_move_writes += 1
                    issued += 1
                    row = resolve(destination)
                    if dead_any and dead[row]:
                        if revival:
                            # Comp+WF revival checkpoint: the dead-block
                            # gate and rescue machinery are serial-only.
                            stats.barrier_gap_move += 1
                            flush()
                            pipeline.write_line(
                                row, reloc_data, revival_allowed=True
                            )
                            rw_dirty = True
                            dead_any = True
                        else:
                            # Dropped, exactly like the serial path's
                            # blocked write_line (result discarded).
                            stats.lost_writes += 1
                    else:
                        wave = pending_get(row, 0)
                        if self._eligible(row, wave):
                            if wave:
                                stats.batch_collision_edges += 1
                            pending[row] = wave + 1
                            ops.append((-1, row, reloc_data, wave))
                        else:
                            stats.barrier_gap_move += 1
                            flush()
                            pipeline.write_line(
                                row, reloc_data, revival_allowed=True
                            )
                            rw_dirty = True
                            dead_any = True
            shadow[logical] = data
            if plain_gap and 0 <= logical < sg_n:
                row = (logical + sg_start) % sg_n
                if row >= sg_gap:
                    row += 1
            else:
                row = start_gap_map(logical)
            if remapper is not None:
                row = resolve(row)
            demand_writes += 1
            if dead_any and dead[row]:
                # Demand writes never revive: lost, serial-identically.
                stats.lost_writes += 1
                results[index] = WriteResult(
                    physical=row, compressed=False, size_bytes=LINE_BYTES,
                    window_start=0, flips=0, lost=True,
                )
                continue
            wave = pending_get(row, 0)
            issued += 1
            if rw_bound + issued + wave >= nwl_min:
                if rw_dirty:
                    rw_bound = int(row_writes.max())
                    rw_dirty = False
                issued = len(ops)  # scheduled, unlanded writes
            # _eligible's cheap wear bound, inlined (the at-risk fall
            # back is rare enough to leave behind the method call).
            if rw_bound + issued + wave < nwl_min or (
                row_writes[row] + wave < no_wear_limit[row]
            ) or (wave == 0 and self._eligible(row, 0)):
                if wave:
                    stats.batch_collision_edges += 1
                pending[row] = wave + 1
                ops.append((index, row, data, wave))
            else:
                if wave:
                    stats.barrier_collision += 1
                else:
                    stats.barrier_ineligible_row += 1
                flush()
                results[index] = pipeline.write_line(row, data)
                rw_dirty = True
                dead_any = True
        flush()
        stats.demand_writes += demand_writes
        return results

    def _eligible(self, row: int, pending: int) -> bool:
        """Whether a write to ``row`` can join the current segment.

        Eligible means *provably uneventful*: even after the row's
        ``pending`` already-scheduled writes land, this write cannot
        create a stuck cell, so placement's O(1) fast path applies,
        post-write verification cannot fail, and the write commits in
        exactly one program -- execution order against other rows is
        then unobservable.  The cheap per-row wear bound (write total
        under the weakest cell's endurance) usually proves it; a row
        near end of life falls back to the exact at-risk scan
        ``step_batch`` uses, which is only valid against *current* cell
        state -- so a row with pending writes that fails the wear bound
        is a barrier, not a scan candidate.
        """
        memory = self.state.memory
        if memory.row_writes[row] + pending < memory.no_wear_limit[row]:
            return True
        if pending:
            return False
        at_risk = int(
            ((memory.endurance[row] - memory.counts[row]) <= 1).sum()
        )
        return at_risk <= self.state.scheme.deterministic_capability

    # -- segment execution -----------------------------------------------

    def _execute(self, ops, results) -> None:
        """Flush one segment: decide/commit in program order, program in waves."""
        pipeline = self.pipeline
        state = self.state
        stats = state.stats
        compress = pipeline.compress
        correction = pipeline.correction

        # Phase B: one compression gather over the whole segment, in
        # program order (the content cache replays its probe/evict
        # bookkeeping serially inside compress_batch).
        if state.config.use_compression:
            compressions = state.compressor.compress_batch(
                [op[2] for op in ops]
            )
        else:
            compressions = repeat(None)

        # Phase C (program order): Figure 8 decision, placement hint,
        # window placement, metadata commit, intra-line rotation -- the
        # order-sensitive bookkeeping every same-row successor reads.
        # The compress/placement stage bodies are inlined here (their
        # per-op call overhead dominated the batched profile): this loop
        # is ``apply_decision`` + ``initial_hint`` + ``place`` +
        # ``commit_metadata`` + ``note_commit`` with the branches that
        # eligibility already decided folded away -- ``place`` always
        # takes its O(1) fast path (fault count within the scheme's
        # capability) and never returns None.
        waves: list[list] = []
        metadata = state.metadata
        fault_counts = state.memory.fault_counts
        intra_wl = state.intra_wl
        n_banks = state.n_banks
        heuristic = state.heuristic
        encode_metadata = state.compressor.encode_metadata
        encoding_memo = self._encoding_memo
        step_counts = stats.heuristic_steps
        if intra_wl is not None:
            # The rotation-counter advance (IntraLineWearLeveler.offset
            # + record_write) is inlined below; the bank index is
            # ``row % n_banks`` so the bounds check is statically true.
            intra_counters = intra_wl._counters
            intra_offsets = intra_wl._offsets
            intra_limit = intra_wl.counter_limit
        # Per-op counters accumulate in locals and publish once after
        # the loop -- nothing reads them mid-segment.
        sc_updates = window_slides = 0
        start_pointer_updates = encoding_updates = 0
        compressed_writes = uncompressed_writes = 0
        # Fault counts stay all-zero until some cell wears out (only
        # barrier writes and wave programming can do that), so the
        # common case skips the per-op numpy lookup.
        have_faults = bool(fault_counts.any())
        for (index, row, data, wave), result in zip(ops, compressions):
            ctx = WriteContext(row, data)
            meta = metadata[row]
            compressed = False
            if result is not None:
                # _decide, inlined: Figure 8 (heuristic mutates meta.sc).
                size = result.size_bytes
                if size < LINE_BYTES:
                    if heuristic is None:
                        compressed = True
                    else:
                        sc_before = meta.sc
                        decision = heuristic.decide(meta, size)
                        sc_updates += meta.sc != sc_before
                        step = decision.step
                        step_counts[step] = step_counts.get(step, 0) + 1
                        compressed = decision.compress
                        ctx.step = step
                ctx.compressed = compressed
                ctx.result = result
            if compressed:
                ctx.payload = result.payload
                ctx.size = size
                if intra_wl is not None:
                    hint = intra_offsets[row % n_banks]
                else:
                    hint = meta.start_pointer
                ctx.hint = hint
                start = hint % LINE_BYTES
                if start != meta.start_pointer:
                    window_slides += 1
                new_pointer = start
                key = (result.algorithm, result.encoding)
                new_encoding = encoding_memo.get(key)
                if new_encoding is None:
                    new_encoding = encode_metadata(result)
                    encoding_memo[key] = new_encoding
            else:
                ctx.payload = data
                start = 0
                new_pointer = 0
                new_encoding = meta.encoding
            if have_faults:
                ctx.line_faults = int(fault_counts[row])
            # commit_metadata, inlined: 13-bit line state + counters.
            start_pointer_updates += new_pointer != meta.start_pointer
            encoding_updates += (
                new_encoding != meta.encoding or ctx.size != meta.stored_size
            )
            meta.start_pointer = new_pointer
            meta.compressed = compressed
            meta.stored_size = ctx.size
            meta.encoding = new_encoding
            if compressed:
                compressed_writes += 1
            else:
                uncompressed_writes += 1
            if intra_wl is not None:
                bank = row % n_banks
                count = intra_counters[bank] + 1
                if count < intra_limit:
                    intra_counters[bank] = count
                else:
                    intra_counters[bank] = 0
                    intra_offsets[bank] = (
                        intra_offsets[bank] + intra_wl.step_bytes
                    ) % intra_wl.line_bytes
                    intra_wl.rotations += 1
            if wave == len(waves):
                waves.append([])
            waves[wave].append((index, ctx, start))
        stats.sc_updates += sc_updates
        stats.window_slides += window_slides
        stats.start_pointer_updates += start_pointer_updates
        stats.encoding_updates += encoding_updates
        stats.compressed_writes += compressed_writes
        stats.uncompressed_writes += uncompressed_writes
        compress.mirror_cache_counters()

        # Phase D: program the waves oldest first.  Rows within a wave
        # are distinct by construction (a same-row successor always
        # lands in a later wave), so each wave is one write_rows
        # scatter; same-row repair commits replay in wave == program
        # order.
        stats.batch_waves += len(waves)
        widest = 0
        parallel = self.bank_parallel
        writer = parallel.write_rows if parallel is not None else None
        commit_repairs = correction.commit_repairs
        program_rows = pipeline.program_rows
        repairs = state.repairs
        for bucket in waves:
            stats.batch_wave_ops += len(bucket)
            if len(bucket) > widest:
                widest = len(bucket)
            targets, flips, worn = program_rows(
                [(ctx, start) for _, ctx, start in bucket],
                write_rows=writer,
            )
            for j, (index, ctx, start) in enumerate(bucket):
                row = ctx.physical
                if worn is not None and worn[j]:
                    ctx.line_faults += worn[j]
                # commit_repairs' fault-free fast path, inlined (skips
                # the row slice); faulted lines take the real refresh.
                if ctx.line_faults:
                    commit_repairs(row, ctx, start, targets[j])
                elif repairs[row]:
                    repairs[row] = {}
                if index >= 0:
                    results[index] = WriteResult(
                        row, ctx.compressed, ctx.size, start, flips[j],
                        False, False, False, ctx.step,
                    )
        if widest > stats.batch_wave_width_max:
            stats.batch_wave_width_max = widest
