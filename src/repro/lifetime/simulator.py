"""Trace-driven PCM lifetime simulation (Section IV, "Fault model").

The simulator replays a write-back stream -- either a synthetic
workload generator or a recorded trace, cycled -- through a
:class:`repro.core.CompressedPCMController` until 50 % of the memory
capacity is dead (the paper's system-failure criterion, following
ECP [8]), and reports the write count at death plus the wear statistics
behind Figures 10, 12 and 13.

Long runs are *survivable*: :meth:`LifetimeSimulator.run` can
periodically write crash-safe checkpoints (see
:mod:`repro.lifetime.checkpoint`), resume bit-identically from one via
``resume_from=``, and stream heartbeat telemetry through pluggable
:class:`~repro.lifetime.telemetry.RunObserver`\\ s.  The write stream is
tracked by an explicit cursor (not a live generator) precisely so the
whole replay position serializes with the rest of the state.
"""

from __future__ import annotations

import time
from collections.abc import Sequence
from pathlib import Path

import numpy as np

from ..core import CompressedPCMController, SystemConfig
from ..pcm import EnduranceModel, FaultMode
from ..tier import HybridController
from ..traces import SyntheticWorkload, Trace, WriteBack, WorkloadProfile
from .checkpoint import (
    CHECKPOINT_VERSION,
    Checkpoint,
    read_checkpoint,
    write_checkpoint,
)
from .results import LifetimeResult
from .telemetry import HeartbeatEvent, RunObserver

#: The paper's failure criterion: half the capacity worn out.
DEAD_CAPACITY_THRESHOLD = 0.5

#: Default writes between durable checkpoints (when checkpointing is on).
DEFAULT_CHECKPOINT_INTERVAL = 100_000

#: Default writes between heartbeat events (when observers are attached).
DEFAULT_HEARTBEAT_INTERVAL = 10_000


class LifetimeSimulator:
    """Replays one workload through one system until memory death."""

    def __init__(
        self,
        config: SystemConfig,
        source: SyntheticWorkload | Trace,
        n_lines: int,
        endurance_mean: float = 100.0,
        endurance_cov: float = 0.15,
        seed: int = 0,
        n_banks: int = 8,
        fault_mode: FaultMode = FaultMode.STUCK_AT_LAST,
        dead_threshold: float = DEAD_CAPACITY_THRESHOLD,
        cell_type: str = "slc",
        rng: np.random.Generator | None = None,
        invariants: tuple = (),
    ) -> None:
        if not 0 < dead_threshold <= 1:
            raise ValueError("dead threshold must be in (0, 1]")
        if rng is not None and seed != 0:
            raise ValueError(
                "pass either rng= or a non-default seed=, not both "
                "(an explicit rng would silently ignore the seed)"
            )
        if not isinstance(source, Trace) and not hasattr(source, "next_write"):
            raise TypeError(
                "workload source must be a Trace or provide next_write() "
                f"(SyntheticWorkload, MixedWorkload); got {type(source).__name__}"
            )
        self.config = config
        self.source = source
        self.n_lines = n_lines
        self.endurance_mean = endurance_mean
        self.dead_threshold = dead_threshold
        if isinstance(source, SyntheticWorkload):
            self.workload_name = source.profile.name
        elif isinstance(source, Trace):
            self.workload_name = source.workload
        else:
            self.workload_name = getattr(source, "name", type(source).__name__)
        model = EnduranceModel(mean=endurance_mean, cov=endurance_cov)
        self.controller = CompressedPCMController(
            config=config,
            n_lines=n_lines,
            endurance_model=model,
            rng=rng if rng is not None else np.random.default_rng(seed),
            n_banks=n_banks,
            fault_mode=fault_mode,
            cell_type=cell_type,
            # Debug-mode checkers (repro.validate.invariants); pure
            # observers, so enabling them never changes the result.
            invariants=invariants,
        )
        if config.tier_lines:
            # Hybrid extension: a content-aware DRAM front tier absorbs
            # hot incompressible lines; the PCM controller only sees the
            # post-tier write stream.  tier_lines=0 keeps the bare
            # controller -- bit-identical to every pre-tier run.
            self.controller = HybridController(
                self.controller, config.tier_lines
            )
        #: Writes issued so far (advanced by run(); restored on resume).
        self.writes_issued = 0
        #: Replay position within a Trace source (unused for generators).
        self.trace_cursor = 0
        #: Cumulative wall-clock seconds spent in run() across every
        #: segment of this experiment (carried through checkpoints, so
        #: resumed telemetry stays monotone in elapsed_seconds).
        self.elapsed_seconds = 0.0

    # -- write stream ----------------------------------------------------

    def _validate_source(self) -> None:
        """Reject unusable sources before the first write (run start)."""
        source = self.source
        if isinstance(source, Trace):
            if len(source) == 0:
                raise ValueError("cannot replay an empty trace")
            if source.n_lines > self.n_lines:
                raise ValueError(
                    f"trace addresses {source.n_lines} lines but the memory "
                    f"has only {self.n_lines}"
                )

    def _next_write(self) -> WriteBack:
        """The next write-back: generator draw or cursor-tracked replay.

        Traces cycle endlessly exactly like the old
        ``itertools.cycle`` stream did, but through an explicit cursor
        so the replay position survives checkpoint/resume.
        """
        source = self.source
        if isinstance(source, Trace):
            write_back = source[self.trace_cursor]
            self.trace_cursor = (self.trace_cursor + 1) % len(source)
            return write_back
        return source.next_write()

    # -- checkpoint / resume ---------------------------------------------

    def save_checkpoint(self, directory: str | Path, keep: int = 2) -> Path:
        """Durably checkpoint the complete replay state; returns the path."""
        checkpoint = Checkpoint(
            version=CHECKPOINT_VERSION,
            writes_issued=self.writes_issued,
            system=self.config.name,
            workload=self.workload_name,
            n_lines=self.n_lines,
            dead_threshold=self.dead_threshold,
            controller=self.controller,
            source=self.source,
            trace_cursor=self.trace_cursor,
            elapsed_seconds=self.elapsed_seconds,
            tier_lines=self.config.tier_lines,
        )
        return write_checkpoint(checkpoint, directory, keep=keep)

    def restore(self, checkpoint: Checkpoint | str | Path) -> None:
        """Adopt a checkpoint's state; the next ``run`` continues from it.

        The checkpoint must come from the same experiment (system,
        workload, memory size, failure threshold) -- a mismatch raises
        ``ValueError`` before any state is replaced.
        """
        if not isinstance(checkpoint, Checkpoint):
            checkpoint = read_checkpoint(checkpoint)
        expected = (
            self.config.name, self.workload_name, self.n_lines,
            self.dead_threshold, self.config.tier_lines,
        )
        found = (
            checkpoint.system, checkpoint.workload, checkpoint.n_lines,
            checkpoint.dead_threshold,
            # getattr: version-1 checkpoints predate the tier knob.
            getattr(checkpoint, "tier_lines", 0),
        )
        if expected != found:
            raise ValueError(
                "checkpoint belongs to a different run: expected "
                "(system, workload, n_lines, dead_threshold, tier_lines)="
                f"{expected}, checkpoint has {found}"
            )
        self.controller = checkpoint.controller
        self.source = checkpoint.source
        self.trace_cursor = checkpoint.trace_cursor
        self.writes_issued = checkpoint.writes_issued
        # getattr: checkpoints pickled before the field existed.
        self.elapsed_seconds = getattr(checkpoint, "elapsed_seconds", 0.0)

    # -- the run loop ----------------------------------------------------

    def _step_epoch(
        self,
        batch: int,
        writes: int,
        max_writes: int,
        check_interval: int,
        checkpoint_interval: int,
        heartbeat_interval: int,
    ) -> int:
        """Issue one batched epoch; returns the number of writes drained.

        The epoch size starts at ``batch`` and is capped at the
        distance to the next multiple of every active cadence (failure
        check, checkpoint, heartbeat -- pass 0 for inactive ones) and
        to the write budget, so cadence events land at exactly the same
        write counts as a serial run.
        """
        size = min(batch, max_writes - writes)
        for interval in (check_interval, checkpoint_interval, heartbeat_interval):
            if interval:
                remaining = interval - writes % interval
                if remaining < size:
                    size = remaining
        source = self.source
        if isinstance(source, Trace):
            # Bulk cursor drain: same cycled stream _next_write yields,
            # without the per-write call and cursor store.
            writes_seq = source.writes
            n = len(writes_seq)
            cursor = self.trace_cursor
            requests = [
                (write_back.line, write_back.data)
                for write_back in (
                    writes_seq[(cursor + offset) % n] for offset in range(size)
                )
            ]
            self.trace_cursor = (cursor + size) % n
        else:
            requests = []
            for _ in range(size):
                write_back = self._next_write()
                requests.append((write_back.line, write_back.data))
        self.controller.write_batch(requests)
        return size

    def run(
        self,
        max_writes: int = 2_000_000,
        check_interval: int = 64,
        *,
        batch: int = 1,
        checkpoint_dir: str | Path | None = None,
        checkpoint_interval: int = DEFAULT_CHECKPOINT_INTERVAL,
        resume_from: Checkpoint | str | Path | None = None,
        observers: Sequence[RunObserver] = (),
        heartbeat_interval: int = DEFAULT_HEARTBEAT_INTERVAL,
    ) -> LifetimeResult:
        """Replay writes until memory death or the write budget runs out.

        Args:
            max_writes: Safety bound; a run that has not failed by then
                returns ``failed=False`` (callers should raise the
                budget or shrink the memory rather than compare
                unfinished runs).
            check_interval: Writes between failure-criterion checks.
            batch: Write-backs issued per controller call.  ``batch > 1``
                drains the write stream in epochs through the batched
                line-parallel engine
                (:meth:`~repro.core.CompressedPCMController.write_batch`,
                which serializes same-line collisions internally); each
                epoch is capped at the distance to the next failure
                check, checkpoint, and heartbeat, so every cadence fires
                at exactly the write counts a ``batch=1`` run would use
                and the result is bit-identical to ``batch=1``.
            checkpoint_dir: When set, a durable checkpoint is written
                there every ``checkpoint_interval`` writes (atomic
                write-rename; see :mod:`repro.lifetime.checkpoint`).
            checkpoint_interval: Writes between checkpoints.
            resume_from: A checkpoint (object or path) to restore
                before the first write; the continuation is
                bit-identical to a never-interrupted run.  The counters
                resume at the checkpoint's write count, so checkpoint,
                heartbeat, and failure-check cadences stay aligned.
            observers: Passive telemetry sinks (see
                :mod:`repro.lifetime.telemetry`); they never affect the
                simulation.
            heartbeat_interval: Writes between heartbeat events (only
                consulted when observers are attached).
        """
        if checkpoint_interval < 1:
            raise ValueError("checkpoint_interval must be >= 1")
        if heartbeat_interval < 1:
            raise ValueError("heartbeat_interval must be >= 1")
        if batch < 1:
            raise ValueError("batch must be >= 1")
        if resume_from is not None:
            self.restore(resume_from)
        self._validate_source()

        controller = self.controller
        checkpointing = checkpoint_dir is not None
        writes = self.writes_issued
        failed = False
        started = time.monotonic()
        elapsed_base = self.elapsed_seconds
        rate_anchor_writes, rate_anchor_time = writes, started
        for observer in observers:
            observer.on_run_start(self, writes)

        while writes < max_writes:
            if batch == 1:
                write_back = self._next_write()
                controller.write(write_back.line, write_back.data)
                writes += 1
            else:
                writes += self._step_epoch(
                    batch, writes, max_writes, check_interval,
                    checkpoint_interval if checkpointing else 0,
                    heartbeat_interval if observers else 0,
                )
            self.writes_issued = writes
            if writes % check_interval == 0 and (
                controller.dead_fraction >= self.dead_threshold
            ):
                failed = True
                break
            if checkpointing and writes % checkpoint_interval == 0:
                self.elapsed_seconds = elapsed_base + (
                    time.monotonic() - started
                )
                path = self.save_checkpoint(checkpoint_dir)
                for observer in observers:
                    observer.on_checkpoint(path, writes)
            if observers and writes % heartbeat_interval == 0:
                now = time.monotonic()
                elapsed = now - rate_anchor_time
                self.elapsed_seconds = elapsed_base + (now - started)
                stats = controller.stats
                event = HeartbeatEvent(
                    system=self.config.name,
                    workload=self.workload_name,
                    writes_issued=writes,
                    max_writes=max_writes,
                    dead_fraction=controller.dead_fraction,
                    compression_cache_hits=stats.compression_cache_hits,
                    compression_cache_misses=stats.compression_cache_misses,
                    elapsed_seconds=self.elapsed_seconds,
                    writes_per_second=(
                        (writes - rate_anchor_writes) / elapsed
                        if elapsed > 0 else 0.0
                    ),
                )
                rate_anchor_writes, rate_anchor_time = writes, now
                for observer in observers:
                    observer.on_heartbeat(event)

        self.elapsed_seconds = elapsed_base + (time.monotonic() - started)
        stats = controller.stats
        # Per-stage counters are the single source of truth: derive the
        # stored-write total rather than re-counting it here.
        stored = stats.stored_writes
        result = LifetimeResult(
            system=self.config.name,
            workload=self.workload_name,
            n_lines=self.n_lines,
            endurance_mean=self.endurance_mean,
            writes_issued=writes,
            failed=failed,
            dead_fraction=controller.dead_fraction,
            total_flips=stats.total_flips,
            set_flips=stats.set_flips,
            reset_flips=stats.reset_flips,
            lost_writes=stats.lost_writes,
            deaths=stats.deaths,
            revivals=stats.revivals,
            avg_faults_per_dead_block=controller.average_faults_per_dead_block(),
            compressed_write_fraction=(
                stats.compressed_writes / stored if stored else 0.0
            ),
            compression_cache_hits=stats.compression_cache_hits,
            compression_cache_misses=stats.compression_cache_misses,
            batch_waves=stats.batch_waves,
            batch_wave_ops=stats.batch_wave_ops,
            batch_wave_width_max=stats.batch_wave_width_max,
            stored_writes=stored,
            compressed_writes=stats.compressed_writes,
            capacity_lines=controller.engine.capacity_lines,
            dead_blocks=controller.engine.dead_count,
            death_fault_total=sum(controller.death_fault_counts.values()),
            death_fault_blocks=len(controller.death_fault_counts),
            encoding_flag_set_flips=stats.encoding_flag_set_flips,
            encoding_flag_reset_flips=stats.encoding_flag_reset_flips,
            encoded_words=stats.encoded_words,
            repair_commits=stats.repair_commits,
            pad_table_writes=getattr(stats, "pad_table_writes", 0),
        )
        for observer in observers:
            observer.on_run_end(result)
        return result
