"""Trace-driven PCM lifetime simulation (Section IV, "Fault model").

The simulator replays a write-back stream -- either a synthetic
workload generator or a recorded trace, cycled -- through a
:class:`repro.core.CompressedPCMController` until 50 % of the memory
capacity is dead (the paper's system-failure criterion, following
ECP [8]), and reports the write count at death plus the wear statistics
behind Figures 10, 12 and 13.
"""

from __future__ import annotations

import itertools
from collections.abc import Iterator

import numpy as np

from ..core import CompressedPCMController, SystemConfig
from ..pcm import EnduranceModel, FaultMode
from ..traces import SyntheticWorkload, Trace, WriteBack, WorkloadProfile
from .results import LifetimeResult

#: The paper's failure criterion: half the capacity worn out.
DEAD_CAPACITY_THRESHOLD = 0.5


def _write_stream(source, n_lines: int) -> Iterator[WriteBack]:
    """Normalize a workload source into an endless write-back stream."""
    if hasattr(source, "next_write"):  # SyntheticWorkload, MixedWorkload, ...
        while True:
            yield source.next_write()
    elif isinstance(source, Trace):
        if len(source) == 0:
            raise ValueError("cannot replay an empty trace")
        if source.n_lines > n_lines:
            raise ValueError(
                f"trace addresses {source.n_lines} lines but the memory "
                f"has only {n_lines}"
            )
        yield from itertools.cycle(source)
    else:
        raise TypeError(
            "workload source must be a SyntheticWorkload or a Trace, "
            f"got {type(source).__name__}"
        )


class LifetimeSimulator:
    """Replays one workload through one system until memory death."""

    def __init__(
        self,
        config: SystemConfig,
        source: SyntheticWorkload | Trace,
        n_lines: int,
        endurance_mean: float = 100.0,
        endurance_cov: float = 0.15,
        seed: int = 0,
        n_banks: int = 8,
        fault_mode: FaultMode = FaultMode.STUCK_AT_LAST,
        dead_threshold: float = DEAD_CAPACITY_THRESHOLD,
        cell_type: str = "slc",
        rng: np.random.Generator | None = None,
    ) -> None:
        if not 0 < dead_threshold <= 1:
            raise ValueError("dead threshold must be in (0, 1]")
        if rng is not None and seed != 0:
            raise ValueError(
                "pass either rng= or a non-default seed=, not both "
                "(an explicit rng would silently ignore the seed)"
            )
        if not isinstance(source, Trace) and not hasattr(source, "next_write"):
            raise TypeError(
                "workload source must be a Trace or provide next_write() "
                f"(SyntheticWorkload, MixedWorkload); got {type(source).__name__}"
            )
        self.config = config
        self.source = source
        self.n_lines = n_lines
        self.endurance_mean = endurance_mean
        self.dead_threshold = dead_threshold
        if isinstance(source, SyntheticWorkload):
            self.workload_name = source.profile.name
        elif isinstance(source, Trace):
            self.workload_name = source.workload
        else:
            self.workload_name = getattr(source, "name", type(source).__name__)
        model = EnduranceModel(mean=endurance_mean, cov=endurance_cov)
        self.controller = CompressedPCMController(
            config=config,
            n_lines=n_lines,
            endurance_model=model,
            rng=rng if rng is not None else np.random.default_rng(seed),
            n_banks=n_banks,
            fault_mode=fault_mode,
            cell_type=cell_type,
        )

    def run(
        self, max_writes: int = 2_000_000, check_interval: int = 64
    ) -> LifetimeResult:
        """Replay writes until memory death or the write budget runs out.

        Args:
            max_writes: Safety bound; a run that has not failed by then
                returns ``failed=False`` (callers should raise the
                budget or shrink the memory rather than compare
                unfinished runs).
            check_interval: Writes between failure-criterion checks.
        """
        controller = self.controller
        writes = 0
        failed = False
        for write_back in _write_stream(self.source, self.n_lines):
            controller.write(write_back.line, write_back.data)
            writes += 1
            if writes % check_interval == 0 and (
                controller.dead_fraction >= self.dead_threshold
            ):
                failed = True
                break
            if writes >= max_writes:
                break

        stats = controller.stats
        # Per-stage counters are the single source of truth: derive the
        # stored-write total rather than re-counting it here.
        stored = stats.stored_writes
        return LifetimeResult(
            system=self.config.name,
            workload=self.workload_name,
            n_lines=self.n_lines,
            endurance_mean=self.endurance_mean,
            writes_issued=writes,
            failed=failed,
            dead_fraction=controller.dead_fraction,
            total_flips=stats.total_flips,
            set_flips=stats.set_flips,
            reset_flips=stats.reset_flips,
            lost_writes=stats.lost_writes,
            deaths=stats.deaths,
            revivals=stats.revivals,
            avg_faults_per_dead_block=controller.average_faults_per_dead_block(),
            compressed_write_fraction=(
                stats.compressed_writes / stored if stored else 0.0
            ),
            compression_cache_hits=stats.compression_cache_hits,
            compression_cache_misses=stats.compression_cache_misses,
        )
