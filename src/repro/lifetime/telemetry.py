"""Run telemetry: heartbeat events from the simulator's write loop.

Long lifetime runs were previously silent until they returned; at
multi-million-write scale that means hours with no way to tell a
healthy run from a hung one.  The simulator now emits periodic
:class:`HeartbeatEvent`\\ s through a pluggable :class:`RunObserver`:

* :class:`JsonlObserver` appends one JSON object per event to a file
  (the machine-readable stream dashboards and the sweep manifest build
  on);
* :class:`ProgressObserver` prints one human-readable line per
  heartbeat (the CLI's ``--progress`` flag).

Observers are strictly passive: they see state *after* each write and
cannot perturb the simulation, so attaching or detaching them never
changes a run's result (heartbeat cadence is driven by the write
counter, wall-clock fields are informational only).
"""

from __future__ import annotations

import json
import sys
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import TextIO

#: JSONL event-schema version (see docs/API.md, "Durability & telemetry").
#: Version 2: ``elapsed_seconds`` became cumulative across resume cuts
#: (version 1 restarted it at every ``run()`` call, so a resumed run's
#: stream was non-monotone in it).
TELEMETRY_VERSION = 2


@dataclass(frozen=True)
class HeartbeatEvent:
    """One periodic progress sample of a running lifetime simulation."""

    system: str
    workload: str
    writes_issued: int
    max_writes: int
    dead_fraction: float
    compression_cache_hits: int
    compression_cache_misses: int
    #: Cumulative simulation wall-clock: the sum over *every* run
    #: segment since write 0, carried through checkpoints, so the field
    #: is strictly monotone along a stream even across resume cuts.
    elapsed_seconds: float
    writes_per_second: float  # mean rate since the previous heartbeat

    @property
    def compression_cache_hit_rate(self) -> float:
        """Cache hits over lookups so far (0.0 when the cache is off)."""
        lookups = self.compression_cache_hits + self.compression_cache_misses
        if not lookups:
            return 0.0
        return self.compression_cache_hits / lookups


class RunObserver:
    """Base observer: every hook is a no-op; subclass what you need."""

    def on_run_start(self, simulator, writes_issued: int) -> None:
        """The run loop is about to start (``writes_issued > 0`` means
        the run resumed from a checkpoint at that write count)."""

    def on_heartbeat(self, event: HeartbeatEvent) -> None:
        """A periodic progress sample (every ``heartbeat_interval`` writes)."""

    def on_checkpoint(self, path, writes_issued: int) -> None:
        """A checkpoint was durably written to ``path``."""

    def on_run_end(self, result) -> None:
        """The run finished; ``result`` is the final ``LifetimeResult``."""


class JsonlObserver(RunObserver):
    """Appends one JSON object per event to a ``.jsonl`` file.

    Events share a ``{"event": <type>, "time": <unix seconds>, ...}``
    envelope; each line is flushed as written so a crashed run's stream
    is readable up to its last event.  The file is opened lazily (on
    the first event) and appended to, so a resumed run extends the
    stream of the interrupted one.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._handle: TextIO | None = None

    def _emit(self, event: str, payload: dict) -> None:
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = open(self.path, "a", encoding="utf-8")
        record = {"event": event, "version": TELEMETRY_VERSION,
                  "time": time.time(), **payload}
        self._handle.write(json.dumps(record) + "\n")
        self._handle.flush()

    def on_run_start(self, simulator, writes_issued: int) -> None:
        self._emit("start", {
            "system": simulator.config.name,
            "workload": simulator.workload_name,
            "n_lines": simulator.n_lines,
            "writes_issued": writes_issued,
            "resumed": writes_issued > 0,
        })

    def on_heartbeat(self, event: HeartbeatEvent) -> None:
        payload = asdict(event)
        payload["compression_cache_hit_rate"] = event.compression_cache_hit_rate
        self._emit("heartbeat", payload)

    def on_checkpoint(self, path, writes_issued: int) -> None:
        self._emit("checkpoint", {
            "path": str(path), "writes_issued": writes_issued,
        })

    def on_run_end(self, result) -> None:
        self._emit("end", {
            "system": result.system,
            "workload": result.workload,
            "writes_issued": result.writes_issued,
            "failed": result.failed,
            "dead_fraction": result.dead_fraction,
        })
        self.close()

    def close(self) -> None:
        """Close the underlying file (reopened lazily if reused)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None


class ProgressObserver(RunObserver):
    """Prints one human-readable line per heartbeat (CLI ``--progress``)."""

    def __init__(self, stream: TextIO | None = None) -> None:
        self.stream = stream if stream is not None else sys.stderr

    def on_run_start(self, simulator, writes_issued: int) -> None:
        origin = f"resumed at {writes_issued:,}" if writes_issued else "fresh"
        print(
            f"[{simulator.workload_name}/{simulator.config.name}] "
            f"run started ({origin})",
            file=self.stream, flush=True,
        )

    def on_heartbeat(self, event: HeartbeatEvent) -> None:
        print(
            f"[{event.workload}/{event.system}] "
            f"{event.writes_issued:,}/{event.max_writes:,} writes  "
            f"dead={event.dead_fraction:.3f}  "
            f"cache={event.compression_cache_hit_rate:.0%}  "
            f"{event.writes_per_second:,.0f} w/s",
            file=self.stream, flush=True,
        )

    def on_run_end(self, result) -> None:
        outcome = "failed (memory dead)" if result.failed else "budget exhausted"
        print(
            f"[{result.workload}/{result.system}] "
            f"done after {result.writes_issued:,} writes: {outcome}",
            file=self.stream, flush=True,
        )
