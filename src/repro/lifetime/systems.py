"""Convenience builders for the paper's lifetime experiments.

These wire workload profiles, system configs, and the scaled simulation
parameters together so benchmarks and examples can run one-liners like::

    results = run_system_comparison("gcc", n_lines=128, endurance_mean=60)
"""

from __future__ import annotations

from pathlib import Path

from ..core import EVALUATED_SYSTEMS, SystemConfig
from ..engine.registry import resolve_config
from ..traces import SyntheticWorkload, get_profile
from .results import LifetimeResult, normalized_lifetime
from .simulator import LifetimeSimulator


def scaled_intra_counter_limit(
    endurance_mean: float, lines_per_bank: int = 32, cycles: float = 2.0
) -> int:
    """Intra-WL counter limit matched to a scaled simulation.

    The paper pairs 16-bit counters with a 1e7-write endurance: a line's
    compression window visits many of the 64 byte offsets during the
    cells' lifetime, while consecutive writes rarely see a moved window
    (each move rewrites the whole window, costing extra flips).  At
    simulation scale both properties must be preserved *relative to the
    scaled lifetime*: we size the counter so the offset completes about
    ``cycles`` full 64-step rotations over the bank's total write budget,

        bank writes to death ~ lines_per_bank * endurance * 512 / (2*flips)

    with ``flips ~ 20`` per write.  Smaller limits over-rotate and
    inflate flips (an artifact the paper-scale system never sees).
    """
    bank_writes_to_death = lines_per_bank * endurance_mean * 512 / (2 * 20)
    return max(16, round(bank_writes_to_death / (64 * cycles)))


def build_simulator(
    system: str | SystemConfig,
    workload: str,
    n_lines: int = 256,
    endurance_mean: float = 100.0,
    endurance_cov: float = 0.15,
    seed: int = 0,
    cell_type: str = "slc",
    **config_overrides,
) -> LifetimeSimulator:
    """A ready-to-run simulator for one (system, workload) pair.

    ``system`` may be any registered :class:`~repro.engine.SystemSpec`
    name (the four paper systems plus ablation/extension variants) or
    an explicit :class:`~repro.core.SystemConfig`.
    """
    if isinstance(system, SystemConfig):
        config = resolve_config(system, **config_overrides)
    else:
        overrides = dict(config_overrides)
        overrides.setdefault(
            "intra_counter_limit",
            scaled_intra_counter_limit(endurance_mean, lines_per_bank=max(1, n_lines // 8)),
        )
        config = resolve_config(system, **overrides)
    source = SyntheticWorkload(get_profile(workload), n_lines=n_lines, seed=seed)
    return LifetimeSimulator(
        config=config,
        source=source,
        n_lines=n_lines,
        endurance_mean=endurance_mean,
        endurance_cov=endurance_cov,
        seed=seed + 1,
        cell_type=cell_type,
    )


def run_system_comparison(
    workload: str,
    systems: tuple[str, ...] = EVALUATED_SYSTEMS,
    n_lines: int = 256,
    endurance_mean: float = 100.0,
    endurance_cov: float = 0.15,
    seed: int = 0,
    max_writes: int = 2_000_000,
    workers: int = 1,
    checkpoint_dir: str | None = None,
    checkpoint_interval: int = 0,
    resume: bool = False,
    progress: bool = False,
    batch: int = 1,
    tier_lines: int = 0,
) -> dict[str, LifetimeResult]:
    """Run every system on one workload (one Figure 10 column group).

    ``batch > 1`` drains each run's write stream in batched epochs
    through the out-of-order scheduler (bit-identical results; the
    scheduler's wave telemetry lands in each
    :class:`~repro.lifetime.results.LifetimeResult`).  Serial path
    only: combine it with ``workers=1``.

    ``tier_lines > 0`` fronts every system with a content-aware DRAM
    tier of that capacity (:mod:`repro.tier`) by overriding the
    config's ``tier_lines`` knob; serial path only.

    ``workers > 1`` fans the runs out across processes through
    :class:`~repro.engine.SweepRunner`; each run is seeded identically
    to the serial path, so the results are bit-for-bit the same.

    Durability knobs (see :mod:`repro.lifetime.checkpoint` and
    :mod:`repro.lifetime.telemetry`): ``checkpoint_dir`` gives each run
    a ``<workload>-<system>/`` subdirectory with durable checkpoints
    (every ``checkpoint_interval`` writes; 0 = the simulator default)
    plus a JSONL heartbeat stream; ``resume=True`` continues each run
    from its latest checkpoint when one exists; ``progress=True``
    prints per-heartbeat progress lines to stderr (serial path only --
    parallel workers stay quiet and rely on the JSONL streams).
    Checkpoints and heartbeats never change results.
    """
    if workers != 1:
        if batch != 1:
            raise ValueError("batch > 1 requires workers=1")
        if tier_lines:
            raise ValueError("tier_lines > 0 requires workers=1")
        from ..engine.sweep import SweepRunner

        runner = SweepRunner(
            systems=tuple(systems),
            workers=workers,
            n_lines=n_lines,
            endurance_mean=endurance_mean,
            endurance_cov=endurance_cov,
            max_writes=max_writes,
            checkpoint_dir=checkpoint_dir,
            checkpoint_interval=checkpoint_interval,
            resume=resume,
        )
        return runner.run_comparison(workload, seed=seed)
    from .checkpoint import latest_checkpoint
    from .simulator import DEFAULT_CHECKPOINT_INTERVAL
    from .telemetry import JsonlObserver, ProgressObserver

    results = {}
    for system in systems:
        overrides: dict = {"tier_lines": tier_lines} if tier_lines else {}
        simulator = build_simulator(
            system,
            workload,
            n_lines=n_lines,
            endurance_mean=endurance_mean,
            endurance_cov=endurance_cov,
            seed=seed,
            **overrides,
        )
        run_kwargs: dict = {"max_writes": max_writes}
        if batch != 1:
            run_kwargs["batch"] = batch
        observers: list = []
        if checkpoint_dir is not None:
            run_dir = Path(checkpoint_dir) / f"{workload}-{system}"
            run_kwargs["checkpoint_dir"] = run_dir
            run_kwargs["checkpoint_interval"] = (
                checkpoint_interval or DEFAULT_CHECKPOINT_INTERVAL
            )
            observers.append(JsonlObserver(run_dir / "events.jsonl"))
            if resume:
                run_kwargs["resume_from"] = latest_checkpoint(run_dir)
        if progress:
            observers.append(ProgressObserver())
        if observers:
            run_kwargs["observers"] = tuple(observers)
        results[system] = simulator.run(**run_kwargs)
    return results


def normalized_against_baseline(
    results: dict[str, LifetimeResult]
) -> dict[str, float]:
    """Figure 10 normalization: every system over the baseline run."""
    if "baseline" not in results:
        raise ValueError("need a baseline run to normalize against")
    baseline = results["baseline"]
    return {
        name: normalized_lifetime(result, baseline)
        for name, result in results.items()
    }
