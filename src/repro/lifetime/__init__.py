"""Trace-driven lifetime simulation of the four evaluated systems."""

from .checkpoint import (
    CHECKPOINT_VERSION,
    Checkpoint,
    latest_checkpoint,
    list_checkpoints,
    read_checkpoint,
    write_checkpoint,
)
from .results import (
    PAPER_TOTAL_LINES,
    LifetimeResult,
    lifetime_months,
    merge_results,
    normalized_lifetime,
)
from .simulator import (
    DEAD_CAPACITY_THRESHOLD,
    DEFAULT_CHECKPOINT_INTERVAL,
    DEFAULT_HEARTBEAT_INTERVAL,
    LifetimeSimulator,
)
from .systems import (
    build_simulator,
    normalized_against_baseline,
    run_system_comparison,
    scaled_intra_counter_limit,
)
from .telemetry import (
    HeartbeatEvent,
    JsonlObserver,
    ProgressObserver,
    RunObserver,
)

__all__ = [
    "CHECKPOINT_VERSION",
    "DEAD_CAPACITY_THRESHOLD",
    "DEFAULT_CHECKPOINT_INTERVAL",
    "DEFAULT_HEARTBEAT_INTERVAL",
    "PAPER_TOTAL_LINES",
    "Checkpoint",
    "HeartbeatEvent",
    "JsonlObserver",
    "LifetimeResult",
    "LifetimeSimulator",
    "ProgressObserver",
    "RunObserver",
    "build_simulator",
    "latest_checkpoint",
    "lifetime_months",
    "list_checkpoints",
    "merge_results",
    "normalized_against_baseline",
    "normalized_lifetime",
    "read_checkpoint",
    "run_system_comparison",
    "scaled_intra_counter_limit",
    "write_checkpoint",
]
