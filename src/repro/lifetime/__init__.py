"""Trace-driven lifetime simulation of the four evaluated systems."""

from .results import (
    PAPER_TOTAL_LINES,
    LifetimeResult,
    lifetime_months,
    normalized_lifetime,
)
from .simulator import DEAD_CAPACITY_THRESHOLD, LifetimeSimulator
from .systems import (
    build_simulator,
    normalized_against_baseline,
    run_system_comparison,
    scaled_intra_counter_limit,
)

__all__ = [
    "DEAD_CAPACITY_THRESHOLD",
    "PAPER_TOTAL_LINES",
    "LifetimeResult",
    "LifetimeSimulator",
    "build_simulator",
    "lifetime_months",
    "normalized_against_baseline",
    "normalized_lifetime",
    "run_system_comparison",
    "scaled_intra_counter_limit",
]
