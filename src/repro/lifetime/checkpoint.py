"""Crash-safe checkpointing for long lifetime runs.

A Figure 10/13 study at serious scale is hours of multi-million-write
Monte-Carlo simulation per (workload, system) pair; an OOM kill or a
SIGTERM from a batch scheduler must not discard that progress.  This
module owns the on-disk format: a :class:`Checkpoint` record pickles
the *complete* replay state of one run -- the controller (bank arrays,
metadata, correction/wear-leveling components, stats, shadow store, and
every ``numpy.random.Generator`` those objects hold), the workload
source (its generator state, per-block content model, and address
buffer), and the trace cursor -- so a resumed run continues the exact
write stream and produces a bit-identical
:class:`~repro.lifetime.results.LifetimeResult`
(pinned by ``tests/lifetime/test_checkpoint.py``).

Durability protocol: checkpoints are written to a temporary file in the
target directory, flushed + fsynced, then atomically renamed into place
with :func:`os.replace`.  A crash mid-write therefore leaves either the
previous checkpoint set or the new one -- never a torn file.  Older
checkpoints are pruned only *after* the new one is durable, so the
directory always holds at least one complete checkpoint once the first
write-rename finishes.
"""

from __future__ import annotations

import os
import pickle
import re
import tempfile
from dataclasses import dataclass
from pathlib import Path

#: Bump when the pickled payload layout changes incompatibly.  Version
#: history: 1 = original layout; 2 = adds ``tier_lines`` (the hybrid
#: DRAM front tier's capacity -- the tier state itself rides inside the
#: pickled controller) and pins that the controller pickle carries the
#: complete ``ControllerStats``, scheduler telemetry included, so
#: observability counters survive a resume instead of silently
#: resetting.
CHECKPOINT_VERSION = 2

#: Versions :func:`read_checkpoint` accepts.  Version-1 checkpoints
#: predate the tier knob; missing fields read back via ``getattr``
#: defaults, so old snapshots resume as tier-less runs.
SUPPORTED_VERSIONS = frozenset({1, 2})

#: ``checkpoint-<writes, zero-padded>.pkl`` -- zero-padding keeps
#: lexicographic and numeric order identical.
_CHECKPOINT_NAME = re.compile(r"^checkpoint-(\d{12})\.pkl$")


@dataclass
class Checkpoint:
    """Complete resumable state of one lifetime run at a write count.

    ``controller`` and ``source`` are the live objects (pickled whole);
    the scalar fields exist so :meth:`LifetimeSimulator.restore
    <repro.lifetime.simulator.LifetimeSimulator.restore>` can refuse a
    checkpoint taken from a different experiment before touching any
    state.
    """

    version: int
    writes_issued: int
    system: str
    workload: str
    n_lines: int
    dead_threshold: float
    controller: object
    source: object
    trace_cursor: int = 0
    #: Cumulative wall-clock seconds spent simulating across every
    #: run segment up to this checkpoint, so resumed runs report
    #: monotone ``elapsed_seconds`` telemetry.  Defaulted (and read
    #: back with ``getattr``) so checkpoints pickled before the field
    #: existed still load, reporting 0.0.
    elapsed_seconds: float = 0.0
    #: DRAM front-tier capacity (version >= 2).  Part of the experiment
    #: identity -- a tiered run and a bare run of the same system are
    #: different experiments -- so ``restore`` refuses a mismatch.
    #: Defaulted (and read back with ``getattr``) so version-1
    #: checkpoints load as the tier-less runs they were.
    tier_lines: int = 0


def checkpoint_path(directory: str | Path, writes_issued: int) -> Path:
    """The canonical checkpoint filename for a write count."""
    return Path(directory) / f"checkpoint-{writes_issued:012d}.pkl"


def write_checkpoint(
    checkpoint: Checkpoint, directory: str | Path, keep: int = 2
) -> Path:
    """Durably write a checkpoint; returns the final path.

    The payload lands under a temporary name first and is renamed into
    place only after an fsync, so readers (and a resume after a crash
    here) never observe a partial file.  After the rename, all but the
    ``keep`` newest checkpoints in the directory are pruned.
    """
    if keep < 1:
        raise ValueError(f"keep must be >= 1, got {keep}")
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    final = checkpoint_path(directory, checkpoint.writes_issued)
    payload = pickle.dumps(checkpoint, protocol=pickle.HIGHEST_PROTOCOL)
    descriptor, tmp_name = tempfile.mkstemp(
        dir=directory, prefix=".tmp-checkpoint-", suffix=".pkl"
    )
    try:
        with os.fdopen(descriptor, "wb") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, final)
    except BaseException:
        # Never leave a torn temporary behind on any failure, including
        # KeyboardInterrupt/SIGTERM landing between write and rename.
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    _prune(directory, keep)
    return final


def read_checkpoint(path: str | Path) -> Checkpoint:
    """Load one checkpoint file, validating the format version."""
    with open(path, "rb") as handle:
        checkpoint = pickle.load(handle)
    if not isinstance(checkpoint, Checkpoint):
        raise ValueError(f"{path} is not a lifetime checkpoint")
    if checkpoint.version not in SUPPORTED_VERSIONS:
        raise ValueError(
            f"checkpoint {path} has format version {checkpoint.version}; "
            f"this build reads versions {sorted(SUPPORTED_VERSIONS)}"
        )
    return checkpoint


def list_checkpoints(directory: str | Path) -> list[Path]:
    """All checkpoint files in a directory, oldest (fewest writes) first."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    found = [
        path for path in directory.iterdir() if _CHECKPOINT_NAME.match(path.name)
    ]
    return sorted(found, key=lambda path: path.name)


def latest_checkpoint(directory: str | Path) -> Path | None:
    """The newest (highest write count) checkpoint, or None if empty."""
    found = list_checkpoints(directory)
    return found[-1] if found else None


def _prune(directory: Path, keep: int) -> None:
    """Drop all but the ``keep`` newest checkpoints (best-effort)."""
    for stale in list_checkpoints(directory)[:-keep]:
        try:
            stale.unlink()
        except OSError:
            pass  # a concurrent prune or an unwritable dir is not fatal
