"""Lifetime result records and paper-scale extrapolation.

Simulations run with scaled-down endurance and capacity (DESIGN.md,
substitution table); this module converts simulated writes-to-failure
into the absolute months of Table IV by linear extrapolation through
the scale factors, and computes the normalized lifetimes of Figure 10
(which are scale-invariant -- verified in
``tests/lifetime/test_scaling_invariance.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..pcm import PAPER_ENDURANCE_MEAN, PCMEnergy

#: Paper-scale memory: 4 GB of 64-byte lines (Table II).
PAPER_TOTAL_LINES = 4 * 2**30 // 64
#: Table II CMP: 16 cores at 2.5 GHz.
PAPER_CORES = 16
PAPER_CLOCK_HZ = 2.5e9
SECONDS_PER_MONTH = 3600 * 24 * 30


@dataclass(frozen=True)
class LifetimeResult:
    """Outcome of one lifetime simulation run."""

    system: str
    workload: str
    n_lines: int
    endurance_mean: float
    writes_issued: int
    failed: bool  # True when the 50%-capacity criterion was reached
    dead_fraction: float
    total_flips: int
    set_flips: int
    reset_flips: int
    lost_writes: int
    deaths: int
    revivals: int
    avg_faults_per_dead_block: float
    compressed_write_fraction: float
    # Content-addressed compression-cache counters (both 0 when the
    # cache -- a pure simulator speed knob -- is disabled).
    compression_cache_hits: int = 0
    compression_cache_misses: int = 0
    # Out-of-order batch-scheduler telemetry (all 0 for batch=1 runs,
    # which never enter the scheduler).
    batch_waves: int = 0
    batch_wave_ops: int = 0
    batch_wave_width_max: int = 0
    # -- exact-merge extensions (sharded fleets) -------------------------
    # The ratio fields above (dead_fraction, avg_faults_per_dead_block,
    # compressed_write_fraction) cannot be combined across shards without
    # their numerators and denominators, so those are carried explicitly.
    # All default to 0 for records predating the service mode; `merge`
    # falls back to write-weighted approximations when they are absent.
    stored_writes: int = 0
    compressed_writes: int = 0
    capacity_lines: int = 0
    dead_blocks: int = 0
    death_fault_total: int = 0
    death_fault_blocks: int = 0
    # -- energy extension (repro.energy) ---------------------------------
    # Flag/selector cells programmed by the WIRE / restricted-coset
    # encoders (all 0 when ``encoding == "none"`` or for records
    # predating the energy model), plus the repair-state refresh count
    # the gate-level correction-energy model multiplies.
    encoding_flag_set_flips: int = 0
    encoding_flag_reset_flips: int = 0
    encoded_words: int = 0
    repair_commits: int = 0
    # -- WoLFRaM PAD backend (``wl_backend == "wolfram"``) ----------------
    # Decoder-table entry rewrites (0 on the Start-Gap backend and for
    # records predating the backend); priced by the energy model at
    # ``PAD_ENTRY_BITS`` register-bit updates each.
    pad_table_writes: int = 0

    @property
    def compression_cache_hit_rate(self) -> float:
        """Cache hits over lookups (0.0 when the cache never ran)."""
        lookups = self.compression_cache_hits + self.compression_cache_misses
        if not lookups:
            return 0.0
        return self.compression_cache_hits / lookups

    @property
    def batch_wave_width_mean(self) -> float:
        """Mean scheduled ops per wave (0.0 when nothing was batched)."""
        if not self.batch_waves:
            return 0.0
        return self.batch_wave_ops / self.batch_waves

    @property
    def writes_to_failure(self) -> int | None:
        """Writes survived before memory death (None if still alive)."""
        return self.writes_issued if self.failed else None

    @property
    def flips_per_write(self) -> float:
        """Mean cells programmed per demand write (wear/energy proxy)."""
        return self.total_flips / self.writes_issued if self.writes_issued else 0.0

    def write_energy_pj(self, energy: PCMEnergy | None = None) -> float:
        """Total array programming energy over the run (picojoules)."""
        energy = energy or PCMEnergy()
        return energy.write_energy_pj(self.set_flips, self.reset_flips)

    def write_energy_per_write_pj(self, energy: PCMEnergy | None = None) -> float:
        """Mean array programming energy per demand write (picojoules)."""
        if not self.writes_issued:
            return 0.0
        return self.write_energy_pj(energy) / self.writes_issued

    def energy_breakdown(self, scheme: str = "ecp6", model=None):
        """Full per-operation energy split (see :mod:`repro.energy`).

        Prices array cells, encoding flag cells, and the correction
        scheme's write-path logic; ``scheme`` should be the run's
        ``correction_scheme``.  Returns an
        :class:`~repro.energy.model.EnergyBreakdown`.
        """
        # Deferred import: repro.energy imports this module's package.
        from ..energy.model import EnergyModel

        model = model or EnergyModel()
        return model.breakdown(self, scheme=scheme)


def merge_results(results) -> LifetimeResult:
    """Exact fleet aggregate of per-shard :class:`LifetimeResult` records.

    Shards of one service run are disjoint address slices of one fleet,
    so every additive counter sums exactly, and the ratio fields are
    recomputed from the summed numerators/denominators carried in the
    exact-merge fields -- the merged record is what a single bookkeeper
    watching all shards at once would have written down.  Requires at
    least one record, all with the same system and endurance mean; a
    single record merges to itself unchanged.  The merged ``failed``
    flag applies the fleet-level criterion: every shard must have
    reached its own failure threshold.
    """
    results = list(results)
    if not results:
        raise ValueError("cannot merge zero results")
    if len(results) == 1:
        return results[0]
    systems = {r.system for r in results}
    if len(systems) > 1:
        raise ValueError(f"cannot merge results across systems: {sorted(systems)}")
    means = {r.endurance_mean for r in results}
    if len(means) > 1:
        raise ValueError(
            f"cannot merge results across endurance means: {sorted(means)}"
        )
    workloads = {r.workload for r in results}
    workload = results[0].workload if len(workloads) == 1 else "fleet"

    n_lines = sum(r.n_lines for r in results)
    writes = sum(r.writes_issued for r in results)
    stored = sum(r.stored_writes for r in results)
    compressed = sum(r.compressed_writes for r in results)
    capacity = sum(r.capacity_lines for r in results)
    dead_blocks = sum(r.dead_blocks for r in results)
    fault_total = sum(r.death_fault_total for r in results)
    fault_blocks = sum(r.death_fault_blocks for r in results)

    if capacity:
        dead_fraction = dead_blocks / capacity
    else:
        # Pre-service records lack capacity_lines; weight by n_lines.
        # Every denominator can legitimately be zero (empty or
        # early-killed shards reporting no lines/writes at all), so each
        # weighted fallback degrades to a defined 0.0 rather than raising.
        dead_fraction = (
            sum(r.dead_fraction * r.n_lines for r in results) / n_lines
            if n_lines
            else 0.0
        )
    if fault_blocks:
        avg_faults = fault_total / fault_blocks
    else:
        dead = [r for r in results if r.deaths]
        avg_faults = (
            sum(r.avg_faults_per_dead_block * r.deaths for r in dead)
            / sum(r.deaths for r in dead)
            if dead
            else 0.0
        )
    if stored:
        compressed_fraction = compressed / stored
    else:
        compressed_fraction = (
            sum(r.compressed_write_fraction * r.writes_issued for r in results)
            / writes
            if writes
            else 0.0
        )

    return LifetimeResult(
        system=results[0].system,
        workload=workload,
        n_lines=n_lines,
        endurance_mean=results[0].endurance_mean,
        writes_issued=writes,
        failed=all(r.failed for r in results),
        dead_fraction=dead_fraction,
        total_flips=sum(r.total_flips for r in results),
        set_flips=sum(r.set_flips for r in results),
        reset_flips=sum(r.reset_flips for r in results),
        lost_writes=sum(r.lost_writes for r in results),
        deaths=sum(r.deaths for r in results),
        revivals=sum(r.revivals for r in results),
        avg_faults_per_dead_block=avg_faults,
        compressed_write_fraction=compressed_fraction,
        compression_cache_hits=sum(r.compression_cache_hits for r in results),
        compression_cache_misses=sum(r.compression_cache_misses for r in results),
        batch_waves=sum(r.batch_waves for r in results),
        batch_wave_ops=sum(r.batch_wave_ops for r in results),
        # Same algebra as ControllerStats.merge: the fleet's widest wave
        # is the max over shards, not a sum.
        batch_wave_width_max=max(r.batch_wave_width_max for r in results),
        stored_writes=stored,
        compressed_writes=compressed,
        capacity_lines=capacity,
        dead_blocks=dead_blocks,
        death_fault_total=fault_total,
        death_fault_blocks=fault_blocks,
        encoding_flag_set_flips=sum(
            r.encoding_flag_set_flips for r in results
        ),
        encoding_flag_reset_flips=sum(
            r.encoding_flag_reset_flips for r in results
        ),
        encoded_words=sum(r.encoded_words for r in results),
        repair_commits=sum(r.repair_commits for r in results),
        pad_table_writes=sum(r.pad_table_writes for r in results),
    )


def normalized_lifetime(result: LifetimeResult, baseline: LifetimeResult) -> float:
    """Figure 10's metric: writes-to-failure over the baseline's."""
    if not (result.failed and baseline.failed):
        raise ValueError(
            "both runs must reach the failure criterion to normalize "
            f"({result.system}: failed={result.failed}, "
            f"{baseline.system}: failed={baseline.failed})"
        )
    return result.writes_issued / baseline.writes_issued


def lifetime_months(
    result: LifetimeResult,
    wpki: float,
    ipc: float = 1.0,
    cores: int = PAPER_CORES,
    clock_hz: float = PAPER_CLOCK_HZ,
) -> float:
    """Extrapolate a scaled run to paper-scale months (Table IV).

    Writes-to-failure scale linearly in both per-cell endurance and
    memory capacity, so the paper-scale write budget is::

        writes_sim * (1e7 / endurance_mean) * (PAPER_LINES / n_lines)

    and the wall-clock rate of write-backs is ``WPKI/1000`` per
    instruction across ``cores`` running at ``ipc * clock_hz``.
    """
    if not result.failed:
        raise ValueError("cannot extrapolate an unfinished run")
    if wpki <= 0 or ipc <= 0:
        raise ValueError("WPKI and IPC must be positive")
    scale = (PAPER_ENDURANCE_MEAN / result.endurance_mean) * (
        PAPER_TOTAL_LINES / result.n_lines
    )
    paper_writes = result.writes_issued * scale
    writes_per_second = (wpki / 1000.0) * ipc * clock_hz * cores
    return paper_writes / writes_per_second / SECONDS_PER_MONTH
