"""Intra-line wear-leveling (Section III-A.2).

Compression concentrates writes in the least-significant bytes of a
line; without countermeasures those cells wear out far faster than the
rest (the Comp configuration's failure mode in Figure 10).  The paper's
fix is deliberately cheap: instead of per-line write counters, one
16-bit counter per *bank* counts writes, and every time it saturates
the bank's window-placement offset rotates by one byte.  Each line's
compression window therefore drifts across all 64 byte positions over
time, and the per-line start pointer (metadata) records where the
window currently sits, so reads always know where to look.
"""

from __future__ import annotations


class IntraLineWearLeveler:
    """Per-bank rotation offsets driven by saturating write counters."""

    def __init__(
        self,
        n_banks: int,
        counter_bits: int = 16,
        step_bytes: int = 1,
        line_bytes: int = 64,
        counter_limit: int | None = None,
    ) -> None:
        """``counter_limit`` overrides ``2**counter_bits`` when given
        (scaled-endurance simulations need non-power-of-two limits)."""
        if n_banks < 1:
            raise ValueError("need at least one bank")
        if counter_bits < 1:
            raise ValueError("counter width must be positive")
        if counter_limit is not None and counter_limit < 1:
            raise ValueError("counter limit must be positive")
        if not 1 <= step_bytes < line_bytes:
            raise ValueError("step must be in [1, line_bytes)")
        self.n_banks = n_banks
        self.counter_limit = counter_limit or (1 << counter_bits)
        self.step_bytes = step_bytes
        self.line_bytes = line_bytes
        self._counters = [0] * n_banks
        self._offsets = [0] * n_banks
        self.rotations = 0

    def offset(self, bank: int) -> int:
        """Current window-placement rotation (bytes) for a bank."""
        self._check_bank(bank)
        return self._offsets[bank]

    def record_write(self, bank: int) -> bool:
        """Count one write to ``bank``; True when the offset rotated.

        Rotation applies to *new* writes only -- lines written before
        the rotation keep their recorded start pointer until rewritten,
        exactly as in the paper's design (no eager data movement).
        """
        self._check_bank(bank)
        self._counters[bank] += 1
        if self._counters[bank] < self.counter_limit:
            return False
        self._counters[bank] = 0
        self._offsets[bank] = (
            self._offsets[bank] + self.step_bytes
        ) % self.line_bytes
        self.rotations += 1
        return True

    def writes_until_rotation(self, bank: int) -> int:
        """Writes remaining before the bank's next rotation."""
        self._check_bank(bank)
        return self.counter_limit - self._counters[bank]

    def _check_bank(self, bank: int) -> None:
        if not 0 <= bank < self.n_banks:
            raise IndexError(f"bank {bank} out of range [0, {self.n_banks})")
