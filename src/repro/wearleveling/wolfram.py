"""WoLFRaM-style programmable-address-decoder wear-leveling.

WoLFRaM (Assadikhomami et al.; see PAPERS.md) folds inter-line
wear-leveling and fault tolerance into one mechanism: a programmable
address decoder (PAD) holds an explicit logical-to-physical permutation
table.  Wear-leveling rewrites table entries -- every ``period`` writes
the just-written line's physical slot is *swapped* with a rotating
partner slot, so write-hot lines diffuse through the array -- and fault
tolerance rewrites them too: a dead line is permanently remapped to a
spare by pointing its decoder entry elsewhere, with no FREE-p-style
pointer stored in the dead line's surviving cells.

Two classes model the two halves:

* :class:`WolframPAD` -- the permutation table plus the swap schedule.
  It is interface-compatible with
  :class:`~repro.wearleveling.start_gap.StartGap` (``map`` /
  ``logical_of`` / ``on_write`` / ``physical_lines``), so the engine's
  :class:`~repro.engine.stages.RemapStage` drives it unchanged; a swap
  is reported as a :class:`PadSwap` whose ``destinations`` lists *both*
  slots needing relocated data (Start-Gap moves list one).
* :class:`PadSpareRemapper` -- the remap-to-spare pool.  It mirrors the
  :class:`~repro.correction.freep.FreePRemapper` surface
  (``resolve`` / ``remap`` / ``spares_available``) but ignores the dead
  line's fault mask: the redirect lives in the decoder table, not in
  the line, so even a fully-worn line can be retired.

Unlike Start-Gap there is no gap slot: ``physical_lines == n_lines``,
and every physical slot always has a logical owner (``logical_of``
never returns ``None``).  Each swap costs two PAD entry rewrites,
counted in ``table_writes`` and -- when :meth:`WolframPAD.bind_stats`
has attached a :class:`~repro.engine.context.ControllerStats` -- in the
priced ``pad_table_writes`` counter (see :mod:`repro.energy.model`).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PadSwap:
    """One PAD swap: physical slots ``slot_a`` and ``slot_b`` trade owners.

    After the table rewrite the logical line stored in ``slot_a`` maps
    to ``slot_b`` and vice versa, so *both* slots must receive their new
    owner's data (``destinations``).  Like a Start-Gap move, only these
    two slots are perturbed -- every other physical slot keeps both its
    content and its mapping -- which is what lets the out-of-order batch
    scheduler treat a swap as two per-row dependency edges instead of a
    global barrier.
    """

    slot_a: int
    slot_b: int

    @property
    def destinations(self) -> tuple[int, ...]:
        """Both swapped slots; each needs its new owner's data written."""
        return (self.slot_a, self.slot_b)

    @property
    def perturbed_lines(self) -> tuple[int, int]:
        """The two physical slots this swap touches -- nothing else."""
        return (self.slot_a, self.slot_b)


class WolframPAD:
    """Programmable-address-decoder remapper over ``n_lines`` lines.

    Args:
        n_lines: Logical (and physical -- no gap slot) line count.
        period: Demand writes between swaps (reuses the configured
            ``start_gap_psi`` so both backends pay one relocation per
            ``psi`` writes of wear-leveling overhead; WoLFRaM pays two
            relocation writes per swap where Start-Gap pays one per
            move).
    """

    def __init__(self, n_lines: int, period: int = 100) -> None:
        if n_lines < 1:
            raise ValueError("need at least one logical line")
        if period < 1:
            raise ValueError("period (writes per swap) must be positive")
        self.n_lines = n_lines
        self.period = period
        #: forward[logical] -> physical; inverse[physical] -> logical.
        self._forward = list(range(n_lines))
        self._inverse = list(range(n_lines))
        #: Rotating partner pointer: the slot the next swap trades with.
        self._partner = 0
        self.write_count = 0
        self.swaps = 0
        #: PAD entries rewritten (2 per swap; remap rewrites are counted
        #: by the spare remapper, which owns that table region).
        self.table_writes = 0
        #: Optional ControllerStats to mirror ``table_writes`` into (the
        #: priced ``pad_table_writes`` counter); bound by the controller.
        self._stats = None

    def bind_stats(self, stats) -> None:
        """Attach the engine's stats record for table-write accounting."""
        self._stats = stats

    @property
    def physical_lines(self) -> int:
        """Physical slots backing the array (no spare gap slot)."""
        return self.n_lines

    def map(self, logical: int) -> int:
        """Current physical slot of a logical line."""
        if not 0 <= logical < self.n_lines:
            raise IndexError(
                f"logical line {logical} out of range [0, {self.n_lines})"
            )
        return self._forward[logical]

    def logical_of(self, physical: int) -> int:
        """Inverse mapping; every slot has an owner (there is no gap)."""
        if not 0 <= physical < self.n_lines:
            raise IndexError(
                f"physical slot {physical} out of range [0, {self.n_lines})"
            )
        return self._inverse[physical]

    def on_write(self, logical: int | None = None) -> PadSwap | None:
        """Account one demand write; every ``period``-th returns a swap.

        The swap pairs the *written* line's current slot with the
        rotating partner slot (skipping it when both coincide), so hot
        lines are the ones that keep moving -- the PAD analogue of
        Start-Gap walking its gap through the array.  The caller must
        copy each destination's new owner's data into it before issuing
        further writes (the simulator charges both copies as real
        writes, mirroring ``GapMovement`` handling).
        """
        self.write_count += 1
        if self.write_count % self.period != 0 or self.n_lines < 2:
            return None
        if logical is None:
            # Interface parity with StartGap.on_write(); without the
            # written line's identity, swap the partner with its
            # successor slot instead.
            slot_a = self._partner
            self._partner = (self._partner + 1) % self.n_lines
        else:
            slot_a = self._forward[logical]
        slot_b = self._partner
        self._partner = (self._partner + 1) % self.n_lines
        if slot_b == slot_a:
            slot_b = self._partner
            self._partner = (self._partner + 1) % self.n_lines
        return self._swap(slot_a, slot_b)

    def _swap(self, slot_a: int, slot_b: int) -> PadSwap:
        """Rewrite the two table entries; returns the movement record."""
        owner_a = self._inverse[slot_a]
        owner_b = self._inverse[slot_b]
        self._forward[owner_a] = slot_b
        self._forward[owner_b] = slot_a
        self._inverse[slot_a] = owner_b
        self._inverse[slot_b] = owner_a
        self.swaps += 1
        self.table_writes += 2
        if self._stats is not None:
            self._stats.pad_table_writes += 2
        return PadSwap(slot_a=slot_a, slot_b=slot_b)


class PadSpareRemapper:
    """Decoder-table remap-to-spare pool (the fault-tolerance half).

    Mirrors the :class:`~repro.correction.freep.FreePRemapper` surface
    the :class:`~repro.engine.stages.CorrectionStage` and the lockstep
    oracle consume (``resolve`` / ``remap`` / ``spares_available`` /
    ``remaps_performed``), with one semantic difference: the redirect is
    a PAD table rewrite, so ``remap`` never inspects the dead line's
    fault mask -- a line too worn to host a FREE-p pointer can still be
    retired.  Chains are collapsed exactly like FREE-p's
    pointer-update-on-chase, and each performed remap is charged as one
    PAD entry rewrite to the bound stats (plus one per collapsed chain
    link).
    """

    def __init__(self, spare_lines: list[int]) -> None:
        self._free_spares = list(dict.fromkeys(spare_lines))
        self._remap: dict[int, int] = {}
        self.remaps_performed = 0
        self.table_writes = 0
        self._stats = None

    def bind_stats(self, stats) -> None:
        """Attach the engine's stats record for table-write accounting."""
        self._stats = stats

    @property
    def spares_available(self) -> int:
        """Unconsumed spare lines remaining."""
        return len(self._free_spares)

    def is_spare(self, physical: int) -> bool:
        """Whether a physical index is an unconsumed spare."""
        return physical in self._free_spares

    def resolve(self, physical: int) -> int:
        """Follow (collapsed) decoder redirects to the live location."""
        seen = set()
        while physical in self._remap:
            if physical in seen:
                raise RuntimeError("remap cycle detected")
            seen.add(physical)
            physical = self._remap[physical]
        return physical

    def remap(self, dead_physical: int, faulty_mask=None) -> int | None:
        """Redirect a dead line to a fresh spare, or None when none remain.

        ``faulty_mask`` is accepted for interface parity with FREE-p and
        ignored: the decoder table holds the redirect, so the dead
        line's remaining health is irrelevant.
        """
        del faulty_mask
        if not self._free_spares:
            return None
        spare = self._free_spares.pop(0)
        self._remap[dead_physical] = spare
        rewrites = 1
        for source, target in list(self._remap.items()):
            if target == dead_physical:
                self._remap[source] = spare
                rewrites += 1
        self.remaps_performed += 1
        self.table_writes += rewrites
        if self._stats is not None:
            self._stats.pad_table_writes += rewrites
        return spare
