"""Start-Gap inter-line wear-leveling (Qureshi et al., MICRO 2009, [7]).

Start-Gap adds one spare ("gap") line to the array and two registers:

* ``gap`` -- the physical index of the spare line;
* ``start`` -- how many full gap rotations have completed.

Every ``psi`` writes the gap moves down by one slot: the content of the
physical line just above the gap is copied into the gap, and the gap
takes its place.  Once the gap has walked the whole array, ``start``
advances, which shifts the logical-to-physical mapping by one.  Over
time every logical line visits every physical slot, spreading write-hot
lines across the array at a cost of one extra write per ``psi`` writes.

Mapping (the original paper's formulation, N logical lines, N+1
physical slots)::

    physical = (logical + start) mod N
    if physical >= gap:  physical += 1

The lifetime simulator performs the data movement the
:class:`GapMovement` describes; Start-Gap itself only does bookkeeping.
This is also the hook where the paper's Comp+WF design re-checks dead
blocks for revival (Section III-A.3): a remap is the one moment a new
payload lands in an old physical line without an extra scan.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class GapMovement:
    """One gap move: copy physical ``source`` into ``destination``.

    ``destination`` is always the old gap slot; after the copy the
    ``source`` slot becomes the new gap.  The wrap move (source = last
    slot, destination = 0) is an ordinary copy -- it completes one full
    rotation of the gap, at which point the start register advances.
    """

    source: int
    destination: int

    @property
    def destinations(self) -> tuple[int, ...]:
        """Physical slots that must receive relocated data, in order.

        Start-Gap relocates exactly one line per move.  This is the
        backend-agnostic surface the controller and the batch scheduler
        iterate: a WoLFRaM PAD swap
        (:class:`repro.wearleveling.wolfram.PadSwap`) reports two
        destinations, a gap move reports one, and neither caller needs
        to know which wear-leveler produced the movement.
        """
        return (self.destination,)

    @property
    def perturbed_lines(self) -> tuple[int, int]:
        """The two physical slots this move touches -- nothing else.

        ``destination`` (the old gap) receives the relocated line's
        content, a real write; ``source`` becomes the new gap, changing
        only which logical line maps there.  Every other physical slot
        keeps both its content and its mapping across the move, which
        is what lets the out-of-order batch scheduler treat a gap move
        as a per-row dependency instead of a global barrier: only
        writes targeting one of these two slots (or issued to a logical
        line whose mapping crosses them) need ordering against it.
        """
        return (self.source, self.destination)


class StartGap:
    """Start-Gap remapper over ``n_lines`` logical lines."""

    def __init__(self, n_lines: int, psi: int = 100) -> None:
        if n_lines < 1:
            raise ValueError("need at least one logical line")
        if psi < 1:
            raise ValueError("psi (writes per gap move) must be positive")
        self.n_lines = n_lines
        self.psi = psi
        self.start = 0
        self.gap = n_lines  # the spare physical slot, initially last
        self.write_count = 0
        self.gap_moves = 0

    @property
    def physical_lines(self) -> int:
        """Physical slots backing the array (one spare)."""
        return self.n_lines + 1

    def map(self, logical: int) -> int:
        """Current physical slot of a logical line."""
        if not 0 <= logical < self.n_lines:
            raise IndexError(
                f"logical line {logical} out of range [0, {self.n_lines})"
            )
        physical = (logical + self.start) % self.n_lines
        if physical >= self.gap:
            physical += 1
        return physical

    def logical_of(self, physical: int) -> int | None:
        """Inverse mapping; None for the gap slot itself."""
        if not 0 <= physical < self.physical_lines:
            raise IndexError(
                f"physical slot {physical} out of range [0, {self.physical_lines})"
            )
        if physical == self.gap:
            return None
        adjusted = physical - 1 if physical > self.gap else physical
        return (adjusted - self.start) % self.n_lines

    def on_write(self, logical: int | None = None) -> GapMovement | None:
        """Account one demand write; every ``psi``-th returns a gap move.

        The caller must copy ``source`` into ``destination`` before
        issuing further writes (the simulator charges this copy as a
        real write to the destination line).  ``logical`` is accepted
        for interface parity with :class:`RegionStartGap` and ignored.
        """
        del logical
        self.write_count += 1
        if self.write_count % self.psi != 0:
            return None
        return self._move_gap()

    def _move_gap(self) -> GapMovement:
        self.gap_moves += 1
        if self.gap == 0:
            # Cyclic wrap: the last physical slot's line moves into the
            # gap at slot 0, the gap jumps to the top, and the mapping
            # shifts by one -- the gap has completed one full rotation.
            movement = GapMovement(source=self.n_lines, destination=0)
            self.gap = self.n_lines
            self.start = (self.start + 1) % self.n_lines
            return movement
        movement = GapMovement(source=self.gap - 1, destination=self.gap)
        self.gap -= 1
        return movement
