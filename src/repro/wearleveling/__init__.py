"""Wear-leveling: Start-Gap (inter-line) and rotation (intra-line)."""

from .intra_line import IntraLineWearLeveler
from .region_start_gap import RegionStartGap
from .start_gap import GapMovement, StartGap

__all__ = ["GapMovement", "IntraLineWearLeveler", "RegionStartGap", "StartGap"]
