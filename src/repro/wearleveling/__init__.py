"""Wear-leveling: Start-Gap / WoLFRaM PAD (inter-line), rotation (intra)."""

from .intra_line import IntraLineWearLeveler
from .region_start_gap import RegionStartGap
from .start_gap import GapMovement, StartGap
from .wolfram import PadSpareRemapper, PadSwap, WolframPAD

__all__ = [
    "GapMovement",
    "IntraLineWearLeveler",
    "PadSpareRemapper",
    "PadSwap",
    "RegionStartGap",
    "StartGap",
    "WolframPAD",
]
