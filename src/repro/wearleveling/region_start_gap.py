"""Region-based Start-Gap (Qureshi et al., MICRO 2009, Section 4).

Plain Start-Gap needs a full gap rotation before hot lines escape a
region of the physical array; for large memories the original paper
divides the array into regions, each with its own gap and start
registers, so data movement stays local and the registers stay small.
Each region counts only its *own* writes toward the psi threshold,
which also makes the movement rate track per-region write pressure.

Exposes the same interface as :class:`repro.wearleveling.StartGap`
(``map`` / ``logical_of`` / ``on_write`` / ``physical_lines``), so the
controller swaps it in via the ``start_gap_regions`` config knob.
Physical layout: region ``r``'s slots (including its spare) occupy the
contiguous range ``[r * (lines_per_region + 1), ...)``.
"""

from __future__ import annotations

from .start_gap import GapMovement, StartGap


class RegionStartGap:
    """Independent Start-Gap instances over fixed line regions."""

    def __init__(self, n_lines: int, psi: int = 100, regions: int = 4) -> None:
        if regions < 1:
            raise ValueError("need at least one region")
        if n_lines < regions:
            raise ValueError("need at least one line per region")
        self.n_lines = n_lines
        self.regions = regions
        base = n_lines // regions
        remainder = n_lines % regions
        self._sizes = [base + (index < remainder) for index in range(regions)]
        self._gaps = [StartGap(size, psi=psi) for size in self._sizes]
        self._logical_bases = []
        self._physical_bases = []
        logical = physical = 0
        for size in self._sizes:
            self._logical_bases.append(logical)
            self._physical_bases.append(physical)
            logical += size
            physical += size + 1  # each region carries its own spare

    @property
    def physical_lines(self) -> int:
        """Physical slots backing the array (incl. spares)."""
        return self.n_lines + self.regions

    @property
    def gap_moves(self) -> int:
        """Total gap movements performed so far."""
        return sum(gap.gap_moves for gap in self._gaps)

    def _region_of_logical(self, logical: int) -> int:
        if not 0 <= logical < self.n_lines:
            raise IndexError(
                f"logical line {logical} out of range [0, {self.n_lines})"
            )
        for index in range(self.regions):
            base = self._logical_bases[index]
            if logical < base + self._sizes[index]:
                return index
        raise AssertionError("unreachable")

    def _region_of_physical(self, physical: int) -> int:
        if not 0 <= physical < self.physical_lines:
            raise IndexError(
                f"physical slot {physical} out of range [0, {self.physical_lines})"
            )
        for index in range(self.regions):
            base = self._physical_bases[index]
            if physical < base + self._sizes[index] + 1:
                return index
        raise AssertionError("unreachable")

    def map(self, logical: int) -> int:
        """Current physical slot of a logical line."""
        region = self._region_of_logical(logical)
        inner = logical - self._logical_bases[region]
        return self._physical_bases[region] + self._gaps[region].map(inner)

    def logical_of(self, physical: int) -> int | None:
        """Inverse mapping; None for a gap slot."""
        region = self._region_of_physical(physical)
        inner = physical - self._physical_bases[region]
        result = self._gaps[region].logical_of(inner)
        if result is None:
            return None
        return self._logical_bases[region] + result

    def on_write(self, logical: int) -> GapMovement | None:
        """Account one write to ``logical``'s region."""
        region = self._region_of_logical(logical)
        movement = self._gaps[region].on_write()
        if movement is None:
            return None
        base = self._physical_bases[region]
        return GapMovement(
            source=base + movement.source,
            destination=base + movement.destination,
        )
