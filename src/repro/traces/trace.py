"""Write-back trace containers.

The paper feeds gem5-collected memory write-back traces to a
lightweight lifetime simulator (Section IV).  Our traces carry the same
information: an ordered stream of (logical line, 64-byte payload)
records, plus enough workload metadata to convert write counts into
wall-clock time (WPKI, core count, clock).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field


@dataclass(frozen=True)
class WriteBack:
    """One last-level-cache eviction reaching the PCM controller."""

    line: int
    data: bytes

    def __post_init__(self) -> None:
        if self.line < 0:
            raise ValueError("line index cannot be negative")
        if len(self.data) != 64:
            raise ValueError(f"payload must be 64 bytes, got {len(self.data)}")


@dataclass
class Trace:
    """An ordered write-back stream with workload metadata."""

    workload: str
    n_lines: int
    writes: list[WriteBack] = field(default_factory=list)

    def append(self, write: WriteBack) -> None:
        """Append one write-back (validates the line index)."""
        if write.line >= self.n_lines:
            raise ValueError(
                f"line {write.line} outside the trace's {self.n_lines}-line "
                "address space"
            )
        self.writes.append(write)

    def extend(self, writes: Iterable[WriteBack]) -> None:
        """Append several write-backs."""
        for write in writes:
            self.append(write)

    def __len__(self) -> int:
        return len(self.writes)

    def __iter__(self) -> Iterator[WriteBack]:
        return iter(self.writes)

    def __getitem__(self, index: int) -> WriteBack:
        return self.writes[index]

    def lines_touched(self) -> set[int]:
        """Set of line indices the trace writes."""
        return {write.line for write in self.writes}

    def writes_per_line(self) -> dict[int, int]:
        """Write count per line index."""
        counts: dict[int, int] = {}
        for write in self.writes:
            counts[write.line] = counts.get(write.line, 0) + 1
        return counts
