"""Multiprogrammed workload mixes.

The paper runs each SPEC program in rate mode (16 copies of the same
binary), so its write-back streams are homogeneous.  Real consolidated
systems interleave *different* programs over one physical memory; this
module composes several workload profiles into a single stream:

* the physical line space is partitioned among the programs
  proportionally to requested shares (a static-partitioning OS model);
* writes interleave randomly, weighted by each program's WPKI (a
  program that writes back twice as often contributes twice the
  traffic).

The mix exposes the same ``next_write`` / ``iter_writes`` /
``generate_trace`` surface as :class:`SyntheticWorkload`, so it drops
into the lifetime simulator unchanged -- see
``benchmarks/test_extension_mixes.py``.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from dataclasses import dataclass

import numpy as np

from .synthetic import SyntheticWorkload
from .trace import Trace, WriteBack
from .workloads import WorkloadProfile


@dataclass(frozen=True)
class MixMember:
    """One program in a mix: its profile and its share of the memory."""

    profile: WorkloadProfile
    share: float = 1.0

    def __post_init__(self) -> None:
        if self.share <= 0:
            raise ValueError("share must be positive")


class MixedWorkload:
    """Interleaved write-back stream from several workload profiles."""

    def __init__(
        self,
        members: Sequence[MixMember],
        n_lines: int,
        seed: int = 0,
    ) -> None:
        if not members:
            raise ValueError("a mix needs at least one member")
        if n_lines < len(members):
            raise ValueError("need at least one line per member")
        self.n_lines = n_lines
        self._rng = np.random.default_rng(seed)

        total_share = sum(member.share for member in members)
        self._generators: list[SyntheticWorkload] = []
        self._bases: list[int] = []
        base = 0
        for index, member in enumerate(members):
            if index == len(members) - 1:
                span = n_lines - base  # absorb rounding in the last slot
            else:
                span = max(1, round(n_lines * member.share / total_share))
                span = min(span, n_lines - base - (len(members) - index - 1))
            self._generators.append(
                SyntheticWorkload(
                    member.profile, n_lines=span, seed=seed + 101 * index
                )
            )
            self._bases.append(base)
            base += span

        wpki = np.array([member.profile.wpki for member in members], dtype=float)
        self._weights = wpki / wpki.sum()
        self._members = tuple(members)

    @property
    def name(self) -> str:
        """Human-readable stream name."""
        return "mix(" + "+".join(m.profile.name for m in self._members) + ")"

    @property
    def members(self) -> tuple[MixMember, ...]:
        """The mix's member programs."""
        return self._members

    def next_write(self) -> WriteBack:
        """Draw a program by write intensity, then its next write-back."""
        index = int(self._rng.choice(len(self._generators), p=self._weights))
        write = self._generators[index].next_write()
        return WriteBack(line=self._bases[index] + write.line, data=write.data)

    def iter_writes(self, count: int) -> Iterator[WriteBack]:
        """Yield the next ``count`` write-backs."""
        for _ in range(count):
            yield self.next_write()

    def generate_trace(self, count: int) -> Trace:
        """Materialize a trace of ``count`` write-backs."""
        trace = Trace(workload=self.name, n_lines=self.n_lines)
        trace.extend(self.iter_writes(count))
        return trace
