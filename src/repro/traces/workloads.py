"""SPEC CPU2006 workload profiles (Table III substitution).

The paper traces 15 memory-intensive SPEC CPU2006 programs through
gem5.  Without the benchmarks or the simulator, we model each program
as a statistical profile of its *write-back stream* -- the only input
the lifetime analysis consumes.  Each profile pins down:

* ``wpki`` and ``cr`` -- copied from Table III (writes per kilo
  instruction, best-of-BDI/FPC compression ratio);
* ``shape`` -- the qualitative form of the per-address compressed-size
  distribution (Figure 11: milc is bimodal with 80 % of addresses under
  25 bytes; gcc is near-uniform over 25..64 bytes);
* ``size_change_prob`` -- how often consecutive writes to one block
  change compressed size (Figure 6: bzip2/gcc high, hmmer/zeusmp low);
* ``jump_prob`` -- among size changes, how often the size takes a large
  swing rather than a small drift (Figure 7: bzip2 blocks swing across
  the whole range, hmmer blocks wiggle);
* ``bdi_fraction`` -- fraction of blocks whose content is base+delta
  friendly rather than frequent-pattern friendly (differentiates the
  BDI and FPC bars of Figure 3);
* ``turbulence`` -- fraction of a block's payload words perturbed by a
  size-preserving rewrite (drives differential-write flip counts);
* ``zipf_alpha`` -- skew of the write-address distribution.

The compressed-size *mean* is enforced exactly: profile weights over
achievable size classes are exponentially tilted until the mean equals
``64 * cr`` (see :func:`tilted_weights`), so Figure 3 and Table III
reproduce by construction, and the distribution *shape* remains free to
match Figures 6/7/11.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np


class CompressibilityClass(enum.Enum):
    """Table III's High / Medium / Low compressibility classes."""

    HIGH = "H"
    MEDIUM = "M"
    LOW = "L"


class SizeShape(enum.Enum):
    """Qualitative shape of the per-address compressed-size CDF."""

    ZERO_HEAVY = "zero_heavy"  # mostly near-zero lines (zeusmp, cactusADM)
    BIMODAL_LOW = "bimodal_low"  # big low mode + small high mode (milc)
    UNIFORM_WIDE = "uniform_wide"  # spread over 25..64 bytes (gcc)
    MID = "mid"  # centered mid-range mass
    HIGH_MASS = "high_mass"  # mostly large sizes (lbm, leslie3d)


#: Candidate compressed-size classes (bytes) per shape.  Weights over
#: these classes are tilted per profile to hit the Table III mean.
SHAPE_CLASSES: dict[SizeShape, tuple[int, ...]] = {
    SizeShape.ZERO_HEAVY: (1, 2, 8, 16, 32, 56),
    SizeShape.BIMODAL_LOW: (2, 8, 16, 24, 48, 64),
    SizeShape.UNIFORM_WIDE: (16, 24, 32, 40, 48, 56, 64),
    SizeShape.MID: (8, 16, 24, 32, 40, 56, 64),
    SizeShape.HIGH_MASS: (24, 32, 40, 48, 56, 64),
}


def tilted_weights(classes: np.ndarray, target_mean: float) -> np.ndarray:
    """Exponentially tilted weights with the requested mean.

    Solves ``sum(w_i * s_i) = target_mean`` with ``w_i ∝ exp(lam*s_i)``
    by bisection on ``lam``.  This is the maximum-entropy distribution
    over the classes with the given mean -- the least-committal way to
    hit a compression ratio without distorting the shape.
    """
    classes = np.asarray(classes, dtype=float)
    if not classes.min() <= target_mean <= classes.max():
        raise ValueError(
            f"target mean {target_mean} outside class range "
            f"[{classes.min()}, {classes.max()}]"
        )

    def mean_at(lam: float) -> float:
        logits = lam * (classes - classes.mean())
        logits -= logits.max()
        weights = np.exp(logits)
        weights /= weights.sum()
        return float(weights @ classes)

    low, high = -2.0, 2.0
    while mean_at(low) > target_mean:
        low *= 2
    while mean_at(high) < target_mean:
        high *= 2
    for _ in range(200):
        mid = (low + high) / 2
        if mean_at(mid) < target_mean:
            low = mid
        else:
            high = mid
    lam = (low + high) / 2
    logits = lam * (classes - classes.mean())
    logits -= logits.max()
    weights = np.exp(logits)
    return weights / weights.sum()


@dataclass(frozen=True)
class WorkloadProfile:
    """Statistical model of one SPEC application's write-back stream."""

    name: str
    wpki: float
    cr: float
    comp_class: CompressibilityClass
    shape: SizeShape
    size_change_prob: float
    jump_prob: float
    bdi_fraction: float
    turbulence: float
    zipf_alpha: float = 0.9

    def __post_init__(self) -> None:
        if not 0 < self.cr <= 1:
            raise ValueError("compression ratio must be in (0, 1]")
        if self.wpki <= 0:
            raise ValueError("WPKI must be positive")
        for prob_name in ("size_change_prob", "jump_prob", "bdi_fraction", "turbulence"):
            value = getattr(self, prob_name)
            if not 0 <= value <= 1:
                raise ValueError(f"{prob_name} must be a probability")

    @property
    def mean_compressed_bytes(self) -> float:
        """Target mean compressed size (CR x 64)."""
        return self.cr * 64

    def size_class_distribution(self) -> tuple[np.ndarray, np.ndarray]:
        """(classes, weights) of the per-block home-size distribution."""
        classes = np.asarray(SHAPE_CLASSES[self.shape], dtype=float)
        return classes, tilted_weights(classes, self.mean_compressed_bytes)


_H = CompressibilityClass.HIGH
_M = CompressibilityClass.MEDIUM
_L = CompressibilityClass.LOW

#: The 15 evaluated workloads, with WPKI and CR straight from Table III
#: and the behavioural knobs set from Figures 5, 6, 7 and 11.
PROFILES: dict[str, WorkloadProfile] = {
    profile.name: profile
    for profile in (
        WorkloadProfile(
            "astar", wpki=1.04, cr=0.53, comp_class=_M, shape=SizeShape.MID,
            size_change_prob=0.45, jump_prob=0.3, bdi_fraction=0.5, turbulence=0.3,
        ),
        WorkloadProfile(
            "bwaves", wpki=9.78, cr=0.34, comp_class=_M, shape=SizeShape.MID,
            size_change_prob=0.30, jump_prob=0.2, bdi_fraction=0.7, turbulence=0.35,
        ),
        WorkloadProfile(
            "bzip2", wpki=4.6, cr=0.53, comp_class=_M, shape=SizeShape.UNIFORM_WIDE,
            size_change_prob=0.75, jump_prob=0.7, bdi_fraction=0.3, turbulence=0.5,
        ),
        WorkloadProfile(
            "cactusADM", wpki=8.09, cr=0.03, comp_class=_H, shape=SizeShape.ZERO_HEAVY,
            size_change_prob=0.05, jump_prob=0.1, bdi_fraction=0.4, turbulence=0.15,
        ),
        WorkloadProfile(
            "calculix", wpki=1.08, cr=0.37, comp_class=_M, shape=SizeShape.MID,
            size_change_prob=0.35, jump_prob=0.25, bdi_fraction=0.6, turbulence=0.3,
        ),
        WorkloadProfile(
            "gcc", wpki=8.05, cr=0.5, comp_class=_M, shape=SizeShape.UNIFORM_WIDE,
            size_change_prob=0.70, jump_prob=0.65, bdi_fraction=0.4, turbulence=0.45,
        ),
        WorkloadProfile(
            "GemsFDTD", wpki=4.15, cr=0.70, comp_class=_L, shape=SizeShape.HIGH_MASS,
            size_change_prob=0.45, jump_prob=0.35, bdi_fraction=0.6, turbulence=0.4,
        ),
        WorkloadProfile(
            "gobmk", wpki=1.14, cr=0.39, comp_class=_M, shape=SizeShape.MID,
            size_change_prob=0.40, jump_prob=0.3, bdi_fraction=0.4, turbulence=0.4,
        ),
        WorkloadProfile(
            "hmmer", wpki=1.9, cr=0.59, comp_class=_M, shape=SizeShape.MID,
            size_change_prob=0.15, jump_prob=0.05, bdi_fraction=0.5, turbulence=0.3,
        ),
        WorkloadProfile(
            "leslie3d", wpki=8.32, cr=0.70, comp_class=_L, shape=SizeShape.HIGH_MASS,
            size_change_prob=0.30, jump_prob=0.2, bdi_fraction=0.6, turbulence=0.25,
        ),
        WorkloadProfile(
            "lbm", wpki=15.6, cr=0.79, comp_class=_L, shape=SizeShape.HIGH_MASS,
            size_change_prob=0.35, jump_prob=0.25, bdi_fraction=0.7, turbulence=0.3,
        ),
        WorkloadProfile(
            "mcf", wpki=10.35, cr=0.55, comp_class=_M, shape=SizeShape.MID,
            size_change_prob=0.50, jump_prob=0.35, bdi_fraction=0.5, turbulence=0.4,
        ),
        WorkloadProfile(
            "milc", wpki=3.4, cr=0.29, comp_class=_H, shape=SizeShape.BIMODAL_LOW,
            size_change_prob=0.15, jump_prob=0.15, bdi_fraction=0.4, turbulence=0.25,
        ),
        WorkloadProfile(
            "sjeng", wpki=4.38, cr=0.08, comp_class=_H, shape=SizeShape.ZERO_HEAVY,
            size_change_prob=0.10, jump_prob=0.1, bdi_fraction=0.3, turbulence=0.2,
        ),
        WorkloadProfile(
            "zeusmp", wpki=5.46, cr=0.05, comp_class=_H, shape=SizeShape.ZERO_HEAVY,
            size_change_prob=0.10, jump_prob=0.1, bdi_fraction=0.4, turbulence=0.2,
        ),
    )
}

#: Evaluation order used throughout the paper's figures.
WORKLOAD_ORDER = (
    "GemsFDTD", "lbm", "bzip2", "leslie3d", "hmmer", "mcf", "gobmk",
    "bwaves", "astar", "calculix", "sjeng", "gcc", "zeusmp", "milc",
    "cactusADM",
)


def get_profile(name: str) -> WorkloadProfile:
    """Look up a workload profile by (case-sensitive) name."""
    try:
        return PROFILES[name]
    except KeyError:
        raise ValueError(
            f"unknown workload {name!r}; choose from {sorted(PROFILES)}"
        ) from None
