"""A set-associative write-back last-level cache model.

The paper's CMP (Table II) filters memory traffic through a shared 4 MB
L2: only dirty evictions reach the PCM controller.  This model lets
examples and integration tests derive write-back streams from raw
access streams the way gem5 did, and quantifies how WPKI emerges from
access locality.  (The lifetime experiments use the calibrated
write-back generator in :mod:`repro.traces.synthetic` directly.)
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from .trace import WriteBack


@dataclass
class CacheStats:
    """Aggregate access statistics."""

    accesses: int = 0
    hits: int = 0
    writebacks: int = 0
    reads_to_memory: int = 0

    @property
    def misses(self) -> int:
        """Accesses that missed the cache."""
        return self.accesses - self.hits

    @property
    def hit_rate(self) -> float:
        """Fraction of accesses that hit."""
        return self.hits / self.accesses if self.accesses else 0.0


@dataclass
class _CacheLine:
    data: bytes
    dirty: bool = field(default=False)


class WritebackCache:
    """LRU set-associative cache producing dirty-eviction write-backs."""

    def __init__(
        self,
        capacity_bytes: int = 4 * 2**20,
        line_bytes: int = 64,
        ways: int = 8,
    ) -> None:
        if capacity_bytes <= 0 or line_bytes <= 0 or ways <= 0:
            raise ValueError("capacity, line size and ways must be positive")
        lines = capacity_bytes // line_bytes
        if lines % ways != 0 or lines == 0:
            raise ValueError("capacity must hold a whole number of sets")
        self.line_bytes = line_bytes
        self.ways = ways
        self.sets = lines // ways
        self._sets: list[OrderedDict[int, _CacheLine]] = [
            OrderedDict() for _ in range(self.sets)
        ]
        self.stats = CacheStats()

    def access(
        self, line: int, data: bytes | None = None
    ) -> WriteBack | None:
        """Read (``data is None``) or write one cache line.

        Returns:
            The dirty eviction this access caused, if any -- exactly the
            write-back stream the PCM controller sees.
        """
        if line < 0:
            raise ValueError("line index cannot be negative")
        if data is not None and len(data) != self.line_bytes:
            raise ValueError(f"write data must be {self.line_bytes} bytes")

        self.stats.accesses += 1
        cache_set = self._sets[line % self.sets]
        entry = cache_set.get(line)
        evicted = None

        if entry is not None:
            self.stats.hits += 1
            cache_set.move_to_end(line)
        else:
            self.stats.reads_to_memory += 1
            if len(cache_set) >= self.ways:
                victim_line, victim = cache_set.popitem(last=False)
                if victim.dirty:
                    self.stats.writebacks += 1
                    evicted = WriteBack(line=victim_line, data=victim.data)
            entry = _CacheLine(data=bytes(self.line_bytes))
            cache_set[line] = entry

        if data is not None:
            entry.data = data
            entry.dirty = True
        return evicted

    def flush(self) -> list[WriteBack]:
        """Write back every dirty line (end-of-run drain)."""
        flushed = []
        for cache_set in self._sets:
            for line, entry in cache_set.items():
                if entry.dirty:
                    self.stats.writebacks += 1
                    flushed.append(WriteBack(line=line, data=entry.data))
            cache_set.clear()
        return flushed
