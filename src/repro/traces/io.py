"""Binary trace serialization.

Traces are stored in a simple framed binary format so long-running
lifetime studies can reuse the same stream across configurations:

* 16-byte magic/header: ``b"PCMTRACE"`` + version (u16) + reserved;
* UTF-8 workload name, length-prefixed (u16);
* line-count (u64) and record-count (u64);
* records: line index (u32) + 64-byte payload each.
"""

from __future__ import annotations

import io
import struct
from pathlib import Path

from .trace import Trace, WriteBack

_MAGIC = b"PCMTRACE"
_VERSION = 1
_HEADER = struct.Struct("<8sHxxxxxx")
_NAME_LEN = struct.Struct("<H")
_COUNTS = struct.Struct("<QQ")
_RECORD = struct.Struct("<I64s")


class TraceFormatError(ValueError):
    """Raised when a trace file is malformed."""


def save_trace(trace: Trace, path: str | Path) -> None:
    """Serialize a trace to ``path``."""
    name = trace.workload.encode("utf-8")
    with open(path, "wb") as stream:
        stream.write(_HEADER.pack(_MAGIC, _VERSION))
        stream.write(_NAME_LEN.pack(len(name)))
        stream.write(name)
        stream.write(_COUNTS.pack(trace.n_lines, len(trace)))
        for write in trace:
            stream.write(_RECORD.pack(write.line, write.data))


def load_trace(path: str | Path) -> Trace:
    """Deserialize a trace from ``path``."""
    with open(path, "rb") as stream:
        return _read_trace(stream)


def _read_exact(stream: io.BufferedIOBase, size: int) -> bytes:
    data = stream.read(size)
    if len(data) != size:
        raise TraceFormatError(
            f"truncated trace file: wanted {size} bytes, got {len(data)}"
        )
    return data


def _read_trace(stream: io.BufferedIOBase) -> Trace:
    magic, version = _HEADER.unpack(_read_exact(stream, _HEADER.size))
    if magic != _MAGIC:
        raise TraceFormatError("not a PCM trace file (bad magic)")
    if version != _VERSION:
        raise TraceFormatError(f"unsupported trace version {version}")
    (name_length,) = _NAME_LEN.unpack(_read_exact(stream, _NAME_LEN.size))
    workload = _read_exact(stream, name_length).decode("utf-8")
    n_lines, record_count = _COUNTS.unpack(_read_exact(stream, _COUNTS.size))

    trace = Trace(workload=workload, n_lines=n_lines)
    for _ in range(record_count):
        line, data = _RECORD.unpack(_read_exact(stream, _RECORD.size))
        trace.append(WriteBack(line=line, data=data))
    return trace
