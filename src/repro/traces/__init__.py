"""Workload profiles, synthetic write-back streams, LLC model, trace IO."""

from .llc import CacheStats, WritebackCache
from .io import TraceFormatError, load_trace, save_trace
from .synthetic import PayloadModel, SyntheticWorkload
from .trace import Trace, WriteBack
from .workloads import (
    PROFILES,
    SHAPE_CLASSES,
    WORKLOAD_ORDER,
    CompressibilityClass,
    SizeShape,
    WorkloadProfile,
    get_profile,
    tilted_weights,
)

__all__ = [
    "PROFILES",
    "SHAPE_CLASSES",
    "WORKLOAD_ORDER",
    "CacheStats",
    "CompressibilityClass",
    "PayloadModel",
    "SizeShape",
    "SyntheticWorkload",
    "Trace",
    "TraceFormatError",
    "WorkloadProfile",
    "WriteBack",
    "WritebackCache",
    "get_profile",
    "load_trace",
    "save_trace",
    "tilted_weights",
]

from .mixes import MixedWorkload, MixMember  # noqa: E402

__all__ += ["MixMember", "MixedWorkload"]

from .accesses import Access, AccessStreamGenerator, CachedWorkload  # noqa: E402

__all__ += ["Access", "AccessStreamGenerator", "CachedWorkload"]
