"""CPU access streams filtered through the LLC (the gem5-like path).

The calibrated generator in :mod:`repro.traces.synthetic` produces the
*write-back* stream directly.  This module models the level above it,
the way the paper's gem5 setup did: a core issues loads and stores with
spatial and temporal locality, a shared write-back LLC filters them,
and only dirty evictions reach the PCM controller.  WPKI is then an
*output* (misses x dirtiness) rather than an input -- useful for
studying how cache pressure shapes PCM wear.

:class:`CachedWorkload` exposes the same ``next_write`` surface as
``SyntheticWorkload``, so it drops into the lifetime simulator.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .llc import WritebackCache
from .synthetic import SyntheticWorkload
from .trace import WriteBack
from .workloads import WorkloadProfile


@dataclass(frozen=True)
class Access:
    """One CPU-side memory access at cache-line granularity."""

    line: int
    is_write: bool


class AccessStreamGenerator:
    """Load/store stream with sequential runs and a Zipf-hot working set."""

    def __init__(
        self,
        n_lines: int,
        write_ratio: float = 0.35,
        sequential_run: int = 4,
        zipf_alpha: float = 0.9,
        seed: int = 0,
    ) -> None:
        if n_lines < 1:
            raise ValueError("need at least one line")
        if not 0 <= write_ratio <= 1:
            raise ValueError("write ratio must be in [0, 1]")
        if sequential_run < 1:
            raise ValueError("sequential runs need at least one access")
        self.n_lines = n_lines
        self.write_ratio = write_ratio
        self.sequential_run = sequential_run
        self._rng = np.random.default_rng(seed)

        ranks = np.arange(1, n_lines + 1, dtype=float)
        probabilities = ranks ** (-zipf_alpha)
        probabilities /= probabilities.sum()
        self._cumulative = np.cumsum(probabilities)
        self._permutation = self._rng.permutation(n_lines)
        self._run_remaining = 0
        self._run_line = 0

    def next_access(self) -> Access:
        """The next load/store in the stream."""
        if self._run_remaining > 0:
            self._run_remaining -= 1
            self._run_line = (self._run_line + 1) % self.n_lines
            line = self._run_line
        else:
            draw = int(
                np.searchsorted(self._cumulative, float(self._rng.random()))
            )
            line = int(self._permutation[min(draw, self.n_lines - 1)])
            self._run_line = line
            self._run_remaining = int(self._rng.integers(0, self.sequential_run))
        return Access(line=line, is_write=bool(self._rng.random() < self.write_ratio))


class CachedWorkload:
    """Access stream -> LLC -> write-back stream, lifetime-simulator ready."""

    def __init__(
        self,
        profile: WorkloadProfile,
        n_lines: int,
        cache_capacity_bytes: int = 64 * 1024,
        cache_ways: int = 8,
        write_ratio: float = 0.35,
        seed: int = 0,
    ) -> None:
        self.n_lines = n_lines
        self.profile = profile
        # The synthetic workload supplies each line's evolving *values*;
        # the access generator decides *when* lines are touched.
        self._values = SyntheticWorkload(profile, n_lines=n_lines, seed=seed)
        self._line_data: dict[int, bytes] = {}
        self._accesses = AccessStreamGenerator(
            n_lines=n_lines,
            write_ratio=write_ratio,
            zipf_alpha=profile.zipf_alpha,
            seed=seed + 1,
        )
        self.cache = WritebackCache(
            capacity_bytes=cache_capacity_bytes, ways=cache_ways
        )
        self.accesses_issued = 0

    @property
    def name(self) -> str:
        """Human-readable stream name."""
        return f"cached({self.profile.name})"

    def next_write(self) -> WriteBack:
        """Advance the access stream until the LLC evicts a dirty line.

        Raises:
            RuntimeError: If no dirty eviction occurs within a large
                access budget -- the working set fits the cache
                entirely, so the configuration produces no PCM write
                traffic (shrink the cache or grow ``n_lines``).
        """
        for _ in range(200_000):
            access = self._accesses.next_access()
            self.accesses_issued += 1
            data = None
            if access.is_write:
                data = self._next_value(access.line)
            evicted = self.cache.access(access.line, data)
            if evicted is not None:
                return evicted
        raise RuntimeError(
            "no write-backs: the working set fits entirely in the LLC "
            f"({self.n_lines} lines vs {self.cache.sets * self.cache.ways} "
            "cache entries)"
        )

    def _next_value(self, line: int) -> bytes:
        """The line's next content, from the calibrated value model."""
        data = self._values.write_to(line).data
        self._line_data[line] = data
        return data

    def measured_wpki(self, instructions_per_access: float = 2.0) -> float:
        """Write-backs per kilo-instruction implied by the run so far."""
        if self.accesses_issued == 0:
            return 0.0
        instructions = self.accesses_issued * instructions_per_access
        return self.cache.stats.writebacks / instructions * 1000.0
