"""Synthetic write-back streams calibrated to the paper's workloads.

This module replaces gem5 + SPEC CPU2006 (see DESIGN.md, substitution
table).  For each workload profile it synthesizes a stream of 64-byte
payloads whose *observable statistics* match what the paper's analysis
depends on:

* best-of-BDI/FPC compressed-size distribution (Table III CR, Figure 3,
  Figure 11 CDF shapes);
* probability that consecutive writes to a block change compressed size
  (Figure 6) and the magnitude of those swings (Figure 7);
* bit-flip behaviour under differential writes (Figures 1 and 5) via
  size-preserving value perturbation ("turbulence");
* write-address skew (Zipf) over the working set.

Payloads come in two styles.  *FPC-style* lines hold ``r`` incompressible
4-byte words followed by zero words: FPC encodes them in
``35r + 6*ceil((16-r)/8)`` bits, giving a fine-grained ladder of
compressed sizes.  *BDI-style* lines are base+delta friendly (narrow
deltas from a wide base), which FPC cannot compress -- so the two
styles separate the BDI and FPC bars in Figure 3 exactly like pointer-
dense vs small-integer-dense applications do.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass

import numpy as np

from ..compression import BestOfCompressor
from .trace import Trace, WriteBack
from .workloads import WorkloadProfile, tilted_weights

_WORDS = 16  # 4-byte words per line
_STYLE_FPC = "fpc"
_STYLE_BDI = "bdi"

#: BDI-style achievable compressed sizes (bytes) and their variants.
_BDI_LADDER = ((1, "zeros"), (8, "rep8"), (16, "b8d1"), (24, "b8d2"),
               (40, "b8d4"), (64, "raw"))


def roll_line(data: bytes, word_offset: int, word_bytes: int) -> bytes:
    """Circularly rotate a line by whole words.

    Blocks emit their canonical (front-loaded) layout rotated by a
    per-block offset that re-draws on large content changes.  Over time
    a block's non-zero content therefore visits every position, so
    *raw-domain* differential-write flips scatter across the whole line
    (the Figure 1 behaviour) -- while the compressed size barely moves:
    the non-zero words stay circularly contiguous, so FPC sees at most
    one extra zero run (<= 6 bits) and BDI's base+delta fit is
    rotation-invariant by construction.
    """
    if word_offset == 0:
        return data
    return np.roll(
        np.frombuffer(data, dtype=np.uint8), word_offset * word_bytes
    ).tobytes()


class PayloadModel:
    """Constructs and perturbs payloads with controllable compressibility."""

    def __init__(self, rng: np.random.Generator) -> None:
        self._rng = rng

    # -- FPC-style lines ------------------------------------------------
    #
    # Layout: word 0 is the *lead* word, words 1..r-1 are incompressible,
    # the rest are zeros.  The lead word's FPC class can toggle between
    # "incompressible" (35 bits) and "halfword sign-extended" (19 bits):
    # because FPC is a variable-length code, toggling it shifts every
    # downstream word's position in the bitstream -- a tiny raw change
    # (one word) that flips a large share of the *compressed* image.
    # This is the entropy-amplification effect behind the paper's
    # Figures 5 and 8.

    def make_fpc(self, random_words: int, lead_small: bool = False) -> bytes:
        """A line of ``random_words`` nonzero words, then zeros."""
        if not 0 <= random_words <= _WORDS:
            raise ValueError("random word count must be in [0, 16]")
        words = np.zeros(_WORDS, dtype=np.uint32)
        if random_words:
            words[:random_words] = self._incompressible_words(random_words)
            words[0] = self._lead_word(lead_small)
        return words.tobytes()

    def perturb_fpc(self, data: bytes, random_words: int, turbulence: float) -> bytes:
        """Flip low bytes of some nonzero words; size class is preserved."""
        if random_words == 0:
            return data
        words = np.frombuffer(data, dtype=np.uint32).copy()
        k = max(1, round(turbulence * random_words))
        targets = self._rng.choice(random_words, size=min(k, random_words), replace=False)
        # XOR a nonzero byte into the lowest byte: an incompressible
        # word's low halfword stays >= 0x0100, and an SE16 lead stays in
        # [0x0100, 0x7FFF], so every word keeps its FPC class.
        words[targets] ^= self._rng.integers(1, 256, size=targets.size, dtype=np.uint32)
        return words.tobytes()

    def toggle_fpc_lead(self, data: bytes, lead_small: bool) -> bytes:
        """Re-class the lead word; the compressed stream realigns."""
        words = np.frombuffer(data, dtype=np.uint32).copy()
        words[0] = self._lead_word(lead_small)
        return words.tobytes()

    def resize_fpc(
        self,
        data: bytes,
        old_words: int,
        new_words: int,
        lead_small: bool,
    ) -> bytes:
        """Change the nonzero-word count, keeping common words.

        Models a block whose content partially changes: the surviving
        words are untouched in the raw image (small differential write)
        while the compressed stream both changes length and realigns.
        """
        if not 0 <= new_words <= _WORDS:
            raise ValueError("random word count must be in [0, 16]")
        words = np.frombuffer(data, dtype=np.uint32).copy()
        if new_words > old_words:
            words[old_words:new_words] = self._incompressible_words(
                new_words - old_words
            )
        else:
            words[new_words:] = 0
        if new_words:
            words[0] = self._lead_word(lead_small)
        return words.tobytes()

    def _lead_word(self, small: bool) -> int:
        """A lead-word value of the requested FPC class."""
        if small:
            # Halfword sign-extended (19-bit encoding), clear of the
            # 8-bit class: value in [0x0100, 0x7FFF].
            return int(self._rng.integers(0x0100, 0x8000))
        return int(self._incompressible_words(1)[0])

    def _incompressible_words(self, count: int) -> np.ndarray:
        """32-bit words no FPC pattern matches (see module docstring)."""
        high = self._rng.integers(0x0100, 0x7F00, size=count, dtype=np.uint32)
        low = self._rng.integers(0x0100, 0xFE00, size=count, dtype=np.uint32)
        return (high << 16) | low

    # -- BDI-style lines ------------------------------------------------

    def make_bdi(self, variant: str) -> bytes:
        """A base+delta-friendly line for one BDI size class."""
        if variant == "zeros":
            return bytes(64)
        if variant == "rep8":
            return self._rng.bytes(8) * 8
        if variant == "raw":
            return self._rng.bytes(64)
        base = int(self._rng.integers(1 << 33, 1 << 62, dtype=np.uint64))
        # Delta spans are kept below half the variant width so that any
        # word can serve as the base: pairwise deltas then still fit,
        # which keeps the variant stable under per-block rotation.
        if variant == "b8d1":
            deltas = self._rng.integers(-60, 61, size=8)
        elif variant == "b8d2":
            deltas = self._rng.integers(-15_000, 15_001, size=8)
            deltas[1] = 10_000  # keep one delta beyond int8 so b8d1 misfits
        elif variant == "b8d4":
            deltas = self._rng.integers(-(2**29), 2**29, size=8)
            deltas[1] = 2**20  # keep one delta beyond int16
        else:
            raise ValueError(f"unknown BDI variant {variant!r}")
        deltas[0] = 0  # the base word itself
        words = (base + deltas).astype(np.uint64)
        return words.tobytes()

    def resize_bdi(self, data: bytes, old_variant: str, new_variant: str) -> bytes:
        """Move a base+delta line to another variant, keeping content.

        Deltas that already fit the new width survive unchanged, so a
        widening re-encode (b8d1 -> b8d2) barely touches the raw image
        while the compressed layout changes completely -- BDI's version
        of the entropy-amplified size-change write.
        """
        simple = ("zeros", "rep8", "raw")
        if new_variant in simple or old_variant in simple:
            return self.make_bdi(new_variant)
        spans = {"b8d1": 60, "b8d2": 15_000, "b8d4": 2**29}
        guards = {"b8d1": None, "b8d2": 10_000, "b8d4": 2**20}
        span = spans[new_variant]
        words = np.frombuffer(data, dtype=np.uint64).copy()
        base = words[0]
        deltas = (words - base).view(np.int64)
        misfits = (deltas < -span) | (deltas > span)
        deltas[misfits] = self._rng.integers(-span, span + 1, size=int(misfits.sum()))
        guard = guards[new_variant]
        if guard is not None:
            deltas[1] = guard
        words = (base.astype(np.int64) + deltas).astype(np.uint64)
        return words.tobytes()

    def perturb_bdi(self, data: bytes, variant: str, turbulence: float) -> bytes:
        """Re-draw some deltas within the variant's width; size preserved."""
        if variant == "zeros":
            return data
        if variant == "rep8":
            # Counter-like update: every word changes identically.
            words = np.frombuffer(data, dtype=np.uint64).copy()
            words += np.uint64(self._rng.integers(1, 16))
            return words.tobytes()
        if variant == "raw":
            raw = bytearray(data)
            k = max(1, round(turbulence * 64))
            for index in self._rng.choice(64, size=min(k, 64), replace=False):
                raw[index] = int(self._rng.integers(0, 256))
            return bytes(raw)
        words = np.frombuffer(data, dtype=np.uint64).copy()
        base = words[0]
        ranges = {"b8d1": 60, "b8d2": 15_000, "b8d4": 2**29}
        span = ranges[variant]
        k = max(1, round(turbulence * 6))
        # Words 0 and 1 are pinned: 0 is the base, 1 guards the variant.
        targets = 2 + self._rng.choice(6, size=min(k, 6), replace=False)
        deltas = self._rng.integers(-span, span + 1, size=targets.size)
        words[targets] = (base.astype(np.int64) + deltas).astype(np.uint64)
        return words.tobytes()


def _fpc_size_ladder() -> tuple[tuple[int, ...], tuple[int, ...]]:
    """(random-word counts, best-of compressed sizes), ascending and unique."""
    best = BestOfCompressor()
    model = PayloadModel(np.random.default_rng(0))
    counts, sizes = [], []
    for r in range(_WORDS + 1):
        size = best.compress(model.make_fpc(r)).size_bytes
        if size not in sizes:
            counts.append(r)
            sizes.append(size)
    return tuple(counts), tuple(sizes)


_FPC_COUNTS, _FPC_SIZES = _fpc_size_ladder()
_BDI_SIZES = tuple(size for size, _ in _BDI_LADDER)
_BDI_VARIANTS = tuple(variant for _, variant in _BDI_LADDER)


@dataclass
class _BlockState:
    """Per-block generator state."""

    style: str
    ladder_index: int  # current rung on the style's size ladder
    home_index: int  # the block's long-run "home" rung
    data: bytes  # canonical (front-loaded) layout
    lead_small: bool = False  # FPC-style lead word's current class
    rotation: int = 0  # word offset of the emitted layout (Figure 1)


class SyntheticWorkload:
    """Write-back stream generator for one workload profile."""

    def __init__(
        self,
        profile: WorkloadProfile,
        n_lines: int,
        seed: int = 0,
        rng: np.random.Generator | None = None,
    ) -> None:
        """``rng`` (when given) overrides ``seed``: the generator is an
        explicitly threaded stream, so parallel sweep runs can hand each
        workload an independent ``SeedSequence``-spawned generator."""
        if n_lines < 1:
            raise ValueError("need at least one line")
        self.profile = profile
        self.n_lines = n_lines
        self._rng = rng if rng is not None else np.random.default_rng(seed)
        self._payloads = PayloadModel(self._rng)
        self._blocks: dict[int, _BlockState] = {}

        # Zipf address distribution over a permuted address space so hot
        # lines are scattered rather than clustered at low addresses.
        ranks = np.arange(1, n_lines + 1, dtype=float)
        probabilities = ranks ** (-profile.zipf_alpha)
        probabilities /= probabilities.sum()
        self._cumulative = np.cumsum(probabilities)
        self._permutation = self._rng.permutation(n_lines)
        self._address_buffer: list[int] = []

        # Per-style home-size distributions: shape classes are snapped
        # onto each style's achievable size ladder, then re-tilted so the
        # mean compressed size matches the profile's CR *exactly* despite
        # the snapping (Table III / Figure 3 reproduce by construction).
        self._home_distributions: dict[str, tuple[np.ndarray, np.ndarray]] = {}
        classes, _ = profile.size_class_distribution()
        for style in (_STYLE_FPC, _STYLE_BDI):
            ladder = np.asarray(self._ladder(style), dtype=float)
            snapped = np.unique(
                [ladder[int(np.argmin(np.abs(ladder - c)))] for c in classes]
            )
            target = min(
                max(profile.mean_compressed_bytes, snapped.min()), snapped.max()
            )
            indices = np.searchsorted(ladder, snapped).astype(int)
            self._home_distributions[style] = (
                indices,
                tilted_weights(snapped, target),
            )

    # -- public API ------------------------------------------------------

    def next_write(self) -> WriteBack:
        """Generate the next write-back in the stream."""
        return self.write_to(self._next_address())

    def write_to(self, line: int) -> WriteBack:
        """Advance one specific line's content and return its write-back.

        Lets callers with their own address streams (e.g. the LLC-filtered
        :class:`repro.traces.accesses.CachedWorkload`) reuse the calibrated
        per-line value model.
        """
        if not 0 <= line < self.n_lines:
            raise IndexError(f"line {line} out of range [0, {self.n_lines})")
        state = self._blocks.get(line)
        if state is None:
            state = self._new_block()
            self._blocks[line] = state
        else:
            self._rewrite(state)
        word_bytes = 4 if state.style == _STYLE_FPC else 8
        return WriteBack(
            line=line, data=roll_line(state.data, state.rotation, word_bytes)
        )

    def iter_writes(self, count: int) -> Iterator[WriteBack]:
        """Yield ``count`` consecutive write-backs."""
        for _ in range(count):
            yield self.next_write()

    def generate_trace(self, count: int) -> Trace:
        """Materialize a trace of ``count`` write-backs."""
        trace = Trace(workload=self.profile.name, n_lines=self.n_lines)
        trace.extend(self.iter_writes(count))
        return trace

    # -- internals ---------------------------------------------------------

    def _next_address(self) -> int:
        if not self._address_buffer:
            draws = np.searchsorted(self._cumulative, self._rng.random(4096))
            draws = np.minimum(draws, self.n_lines - 1)  # guard fp rounding
            self._address_buffer = self._permutation[draws].tolist()
        return self._address_buffer.pop()

    def _ladder(self, style: str) -> tuple[int, ...]:
        return _FPC_SIZES if style == _STYLE_FPC else _BDI_SIZES

    def _new_block(self) -> _BlockState:
        style = (
            _STYLE_BDI
            if self._rng.random() < self.profile.bdi_fraction
            else _STYLE_FPC
        )
        home = self._draw_home(style)
        state = _BlockState(style=style, ladder_index=home, home_index=home, data=b"")
        state.data = self._construct(state)
        return state

    def _draw_home(self, style: str) -> int:
        indices, weights = self._home_distributions[style]
        return int(self._rng.choice(indices, p=weights))

    def _construct(self, state: _BlockState) -> bytes:
        if state.style == _STYLE_FPC:
            return self._payloads.make_fpc(
                _FPC_COUNTS[state.ladder_index], state.lead_small
            )
        return self._payloads.make_bdi(_BDI_VARIANTS[state.ladder_index])

    def _rewrite(self, state: _BlockState) -> None:
        if self._rng.random() >= self.profile.size_change_prob:
            state.data = self._perturb(state)
            return
        if state.style == _STYLE_FPC:
            self._resize_fpc_block(state)
        else:
            self._resize_bdi_block(state)

    def _resize_fpc_block(self, state: _BlockState) -> None:
        old_words = _FPC_COUNTS[state.ladder_index]
        if self._rng.random() < self.profile.jump_prob:
            # Large swing: new word count from the home distribution,
            # keeping surviving words (small raw delta, realigned and
            # resized compressed stream).
            state.ladder_index = self._draw_home(_STYLE_FPC)
            state.lead_small = not state.lead_small  # stream realigns
            state.data = self._payloads.resize_fpc(
                state.data, old_words, _FPC_COUNTS[state.ladder_index],
                state.lead_small,
            )
            # A quarter of large content changes also relocate the data
            # within the line, scattering raw-domain wear over time
            # (Figure 1).  The rest keep the layout in place: those are
            # the writes whose raw delta stays small while the
            # compressed stream realigns and resizes -- the
            # flip-increase events of Figure 5 that the Figure 8
            # heuristic exists to catch.
            if self._rng.random() < 0.25:
                state.rotation = int(self._rng.integers(0, _WORDS))
        elif old_words > 0:
            # Small drift: toggle the lead word's FPC class.  The size
            # moves by 2 bytes and the whole downstream bitstream
            # realigns -- lots of compressed flips from a one-word edit.
            state.lead_small = not state.lead_small
            state.data = self._payloads.toggle_fpc_lead(state.data, state.lead_small)

    def _resize_bdi_block(self, state: _BlockState) -> None:
        ladder = self._ladder(_STYLE_BDI)
        if self._rng.random() < self.profile.jump_prob:
            new_index = self._draw_home(_STYLE_BDI)
            if self._rng.random() < 0.25:
                state.rotation = int(self._rng.integers(0, 8))
            if new_index != state.ladder_index:
                state.data = self._payloads.resize_bdi(
                    state.data,
                    _BDI_VARIANTS[state.ladder_index],
                    _BDI_VARIANTS[new_index],
                )
                state.ladder_index = new_index
            return
        elif state.ladder_index != state.home_index:
            # Small drift: bounce back to the home variant.
            new_index = state.home_index
        else:
            # Small drift: move to the nearest-size neighbouring variant
            # (base+delta data widening or narrowing its deltas).  The
            # BDI ladder is coarse at the top; a "drift" spanning more
            # than 8 bytes is not small, so those rungs simply hold
            # still (their size changes come from jumps).
            home = state.home_index
            neighbors = [
                index for index in (home - 1, home + 1) if 0 <= index < len(ladder)
            ]
            new_index = min(
                neighbors, key=lambda index: abs(ladder[index] - ladder[home])
            )
            if abs(ladder[new_index] - ladder[home]) > 8:
                new_index = state.home_index
        if new_index == state.ladder_index:
            return
        state.ladder_index = new_index
        state.data = self._construct(state)

    def _perturb(self, state: _BlockState) -> bytes:
        if state.style == _STYLE_FPC:
            return self._payloads.perturb_fpc(
                state.data, _FPC_COUNTS[state.ladder_index], self.profile.turbulence
            )
        return self._payloads.perturb_bdi(
            state.data, _BDI_VARIANTS[state.ladder_index], self.profile.turbulence
        )
