"""Command-line interface: ``python -m repro <experiment> [options]``.

Subcommands map to the paper's experiments:

==============  =====================================================
``lifetime``    Figure 10 / Table IV for chosen workloads and systems
``montecarlo``  Figure 9 tolerable-fault crossings
``compress``    Figures 3/6/11 compression statistics per workload
``flips``       Figure 5 flip-direction split per workload
``perf``        Section V-B read-latency / slowdown model
``energy``      energy x lifetime x throughput Pareto sweep (repro.energy)
``trace``       generate and save a synthetic write-back trace
``systems``     list registered ``SystemSpec``s and their stages
``fuzz``        differential fuzzing: fast pipeline vs reference oracle
``serve``       sharded multi-process memory service driven end to end
``workload``    fleet-shaped request streams (run in-process or save)
==============  =====================================================
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from .analysis import (
    cdf_fraction_below,
    classify_flip_impact,
    fig3_compressed_sizes,
    fig6_size_change_probability,
    fig11_max_size_cdf,
    run_workload_study,
)
from .core import EVALUATED_SYSTEMS
from .correction import PAPER_SCHEMES, make_scheme
from .engine import list_systems, resolve_config, system_names
from .faultinjection import tolerable_faults
from .perf import PerformanceModel
from .service.workloads import SERVICE_WORKLOADS
from .traces import WORKLOAD_ORDER, SyntheticWorkload, get_profile, save_trace


#: Default ``energy`` sweep: the paper's evaluated four plus the
#: energy-encoding variants (sweeping *every* registered system to the
#: failure criterion is expensive; ask for --systems explicitly).
ENERGY_SWEEP_SYSTEMS = EVALUATED_SYSTEMS + (
    "baseline_wire", "comp_wf_wire", "comp_coset", "comp_wf_coset",
)


def _positive_int(value: str) -> int:
    parsed = int(value)
    if parsed < 1:
        raise argparse.ArgumentTypeError("must be >= 1")
    return parsed


def _nonnegative_int(value: str) -> int:
    parsed = int(value)
    if parsed < 0:
        raise argparse.ArgumentTypeError("must be >= 0")
    return parsed


def _add_tier_option(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--tier-lines", type=_nonnegative_int, default=0, metavar="LINES",
        help="content-aware DRAM front-tier capacity in 64-byte lines "
        "(repro.tier; default 0 = no tier, bit-identical to the bare "
        "controller)",
    )


def _add_workloads_option(parser: argparse.ArgumentParser, default: list[str]) -> None:
    parser.add_argument(
        "--workloads", nargs="+", default=default,
        choices=sorted(WORKLOAD_ORDER), metavar="APP",
        help=f"workloads (default: {' '.join(default)})",
    )


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse CLI parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction experiments for the DSN'17 PCM "
        "compression / hard-error-tolerance paper.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    lifetime = subparsers.add_parser("lifetime", help="Figure 10 / Table IV")
    _add_workloads_option(lifetime, ["milc", "gcc"])
    lifetime.add_argument("--systems", nargs="+", default=list(EVALUATED_SYSTEMS),
                          choices=system_names(), metavar="SYSTEM",
                          help="registered systems (see `repro systems`)")
    lifetime.add_argument("--lines", type=_positive_int, default=96)
    lifetime.add_argument("--endurance", type=float, default=60.0)
    lifetime.add_argument("--cov", type=float, default=0.15)
    lifetime.add_argument("--seed", type=int, default=0)
    lifetime.add_argument("--workers", type=_positive_int, default=1,
                          help="worker processes for the (workload x system) "
                          "sweep (1 = serial; same results either way)")
    lifetime.add_argument("--batch", type=_positive_int, default=1,
                          help="write-backs per controller call; > 1 drains "
                          "each run through the out-of-order batch scheduler "
                          "(bit-identical results; requires --workers 1)")
    lifetime.add_argument("--profile", metavar="FILE", default=None,
                          help="dump a cProfile of the run to FILE and print "
                          "the top functions by cumulative time")
    lifetime.add_argument("--checkpoint-dir", metavar="DIR", default=None,
                          help="write durable per-run checkpoints and JSONL "
                          "heartbeat telemetry under DIR (one "
                          "<workload>-<system>/ subdirectory per run)")
    lifetime.add_argument("--checkpoint-interval", type=_positive_int,
                          default=None, metavar="WRITES",
                          help="writes between checkpoints (default: "
                          "100000; requires --checkpoint-dir)")
    lifetime.add_argument("--resume", action="store_true",
                          help="resume each run from its latest checkpoint "
                          "under --checkpoint-dir (bit-identical to an "
                          "uninterrupted run)")
    lifetime.add_argument("--progress", action="store_true",
                          help="print per-run heartbeat progress lines to "
                          "stderr")
    lifetime.add_argument("--energy", action="store_true",
                          help="also print each run's write-path energy "
                          "(pJ/write via repro.energy, correction logic "
                          "included)")
    _add_tier_option(lifetime)

    montecarlo = subparsers.add_parser("montecarlo", help="Figure 9 crossings")
    montecarlo.add_argument("--sizes", nargs="+", type=int, default=[16, 32, 64])
    montecarlo.add_argument("--trials", type=_positive_int, default=150)
    montecarlo.add_argument("--schemes", nargs="+", default=list(PAPER_SCHEMES))
    montecarlo.add_argument("--seed", type=int, default=0)

    compress = subparsers.add_parser("compress", help="Figures 3/6/11 statistics")
    _add_workloads_option(compress, list(WORKLOAD_ORDER))
    compress.add_argument("--writes", type=_positive_int, default=3000)
    compress.add_argument("--seed", type=int, default=0)

    flips = subparsers.add_parser("flips", help="Figure 5 flip split")
    _add_workloads_option(flips, list(WORKLOAD_ORDER))
    flips.add_argument("--writes", type=_positive_int, default=4000)
    flips.add_argument("--seed", type=int, default=2)

    perf = subparsers.add_parser("perf", help="Section V-B overheads")
    _add_workloads_option(perf, list(WORKLOAD_ORDER))
    perf.add_argument("--samples", type=_positive_int, default=1000)

    energy = subparsers.add_parser(
        "energy", help="energy x lifetime x throughput Pareto sweep"
    )
    _add_workloads_option(energy, ["milc", "gcc", "lbm"])
    energy.add_argument("--systems", nargs="+", default=None,
                        choices=system_names(), metavar="SYSTEM",
                        help="systems to sweep (default: the evaluated four "
                        "plus the energy-encoding variants)")
    energy.add_argument("--lines", type=_positive_int, default=96)
    energy.add_argument("--endurance", type=float, default=60.0)
    energy.add_argument("--max-writes", type=_positive_int, default=2_000_000,
                        help="per-run write budget (runs stop early at the "
                        "failure criterion)")
    energy.add_argument("--samples", type=_positive_int, default=500,
                        help="write-stream samples for the read-mix estimate")
    energy.add_argument("--seed", type=int, default=0)
    energy.add_argument("--json", action="store_true",
                        help="print the point set as JSON (the "
                        "BENCH_energy.json record shape)")
    energy.add_argument("--out", metavar="FILE", default=None,
                        help="also write the JSON point set to FILE")

    trace = subparsers.add_parser("trace", help="generate a trace file")
    trace.add_argument("workload", choices=sorted(WORKLOAD_ORDER))
    trace.add_argument("output", help="output path (binary trace)")
    trace.add_argument("--lines", type=_positive_int, default=1024)
    trace.add_argument("--writes", type=_positive_int, default=100_000)
    trace.add_argument("--seed", type=int, default=0)

    systems = subparsers.add_parser(
        "systems", help="list registered SystemSpecs and their stages"
    )
    systems.add_argument("--tag", default=None,
                         choices=("paper", "ablation", "extension"),
                         help="only show specs carrying this tag")
    systems.add_argument("--stages", action="store_true",
                         help="also print each system's stage composition")

    report = subparsers.add_parser(
        "report", help="print saved benchmark results (benchmarks/results/)"
    )
    report.add_argument("--results-dir", default="benchmarks/results")
    report.add_argument("--only", nargs="*", default=None,
                        help="substring filters on result names")

    fuzz = subparsers.add_parser(
        "fuzz", help="differential campaigns: fast pipeline vs loop oracle"
    )
    fuzz.add_argument("--writes", type=_positive_int, default=2000,
                      help="writes per (system, scheme) campaign")
    fuzz.add_argument("--seed", type=int, default=0)
    fuzz.add_argument("--systems", nargs="+", default=None,
                      choices=system_names(), metavar="SYSTEM",
                      help="systems to fuzz (default: all registered)")
    fuzz.add_argument("--schemes", nargs="+",
                      default=["ecp6", "safer32", "aegis"],
                      metavar="SCHEME",
                      help="correction schemes per system (default: "
                      "ecp6 safer32 aegis)")
    fuzz.add_argument("--lines", type=_positive_int, default=24,
                      help="logical lines per campaign memory")
    fuzz.add_argument("--banks", type=_positive_int, default=4)
    fuzz.add_argument("--endurance", type=float, default=32.0,
                      help="mean cell endurance (small = wear fast, so "
                      "fault paths are exercised within the campaign)")
    fuzz.add_argument("--cov", type=float, default=0.2)
    fuzz.add_argument("--corpus", metavar="DIR", default=None,
                      help="write failing repro seeds (JSON) under DIR")
    fuzz.add_argument("--time-budget", type=float, default=None,
                      metavar="SECONDS",
                      help="stop starting/continuing campaigns past this "
                      "wall-time budget (skipped campaigns are reported)")
    fuzz.add_argument("--check-state-every", type=_positive_int, default=64,
                      help="writes between full-memory oracle sweeps (every "
                      "write still gets the per-write diff)")
    fuzz.add_argument("--no-shrink", action="store_true",
                      help="skip ddmin shrinking of failing sequences")
    fuzz.add_argument("--replay", metavar="FILE", default=None,
                      help="re-run one corpus entry instead of fuzzing")
    fuzz.add_argument("--shards", type=_positive_int, default=1,
                      help="partition each campaign memory into K shards, "
                      "run the lockstep oracle per shard, and assert the "
                      "merged fleet view (default: 1 = unsharded)")
    fuzz.add_argument("--batch", type=_positive_int, default=1,
                      help="group every K stream ops into one write_batch "
                      "call per shard, driving the out-of-order scheduler "
                      "under the oracle (default: 1 = serial writes)")
    fuzz.add_argument("--tier", dest="tier_lines", type=_nonnegative_int,
                      default=0, metavar="LINES",
                      help="front each lockstep pair with a DRAM tier of "
                      "this capacity, validating the post-tier PCM stream "
                      "(default: 0 = no tier)")
    fuzz.add_argument("--wl-backend", dest="wl_backend", default=None,
                      choices=("startgap_freep", "wolfram"),
                      help="force every campaign onto this wear-leveling "
                      "backend (default: each system's own configured "
                      "backend)")

    serve = subparsers.add_parser(
        "serve", help="sharded multi-process PCM memory service"
    )
    serve.add_argument("--shards", type=_positive_int, default=4,
                       help="shard worker processes (default: 4)")
    serve.add_argument("--lines", type=_positive_int, default=256,
                       help="global logical address-space size")
    serve.add_argument("--system", default="comp_wf",
                       choices=system_names(), metavar="SYSTEM",
                       help="registered system every shard runs "
                       "(default: comp_wf)")
    serve.add_argument("--workload", default="memcached",
                       choices=SERVICE_WORKLOADS, metavar="PROFILE",
                       help="request-stream shape (default: memcached)")
    serve.add_argument("--requests", type=_positive_int, default=20_000,
                       help="write requests to drive through the fleet")
    serve.add_argument("--batch", type=_positive_int, default=64,
                       help="requests routed per submit round")
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--endurance", type=float, default=100.0)
    serve.add_argument("--cov", type=float, default=0.15)
    serve.add_argument("--banks", type=_positive_int, default=8)
    serve.add_argument("--telemetry-dir", metavar="DIR", default=None,
                       help="write shard-<i>/events.jsonl streams and the "
                       "aggregated fleet.jsonl under DIR")
    serve.add_argument("--heartbeat-interval", type=_positive_int,
                       default=1000, metavar="REQUESTS",
                       help="requests between per-shard heartbeats")
    serve.add_argument("--fleet-interval", type=_positive_int,
                       default=1000, metavar="REQUESTS",
                       help="routed requests between fleet heartbeats")
    serve.add_argument("--retries", type=int, default=2,
                       help="worker deaths absorbed per shard before the "
                       "service fails (recovery is exact replay)")
    serve.add_argument("--inline", action="store_true",
                       help="run the fleet in-process (no worker processes; "
                       "bit-identical results, handy for debugging)")
    serve.add_argument("--json", action="store_true",
                       help="print the final fleet result as JSON")
    _add_tier_option(serve)

    workload = subparsers.add_parser(
        "workload", help="generate or run a fleet-shaped request stream"
    )
    workload.add_argument("profile", choices=SERVICE_WORKLOADS,
                          help="request-stream shape")
    workload.add_argument("--lines", type=_positive_int, default=256,
                          help="global logical address-space size")
    workload.add_argument("--requests", type=_positive_int, default=20_000)
    workload.add_argument("--seed", type=int, default=0)
    workload.add_argument("--out", metavar="FILE", default=None,
                          help="save the stream as a binary trace (global "
                          "addresses) instead of running it")
    workload.add_argument("--shards", type=_positive_int, default=1,
                          help="run through an in-process fleet of K shards "
                          "and print the merged statistics")
    workload.add_argument("--system", default="comp_wf",
                          choices=system_names(), metavar="SYSTEM")
    workload.add_argument("--endurance", type=float, default=100.0)
    workload.add_argument("--cov", type=float, default=0.15)
    workload.add_argument("--batch", type=_positive_int, default=64)
    _add_tier_option(workload)

    return parser


def cmd_lifetime(args: argparse.Namespace) -> None:
    """Run the Figure 10 / Table IV experiment."""
    if args.profile:
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
        try:
            _run_lifetime(args)
        finally:
            profiler.disable()
            profiler.dump_stats(args.profile)
            _print_profile_summary(profiler, args.profile)
    else:
        _run_lifetime(args)


def _run_lifetime(args: argparse.Namespace) -> None:
    """The lifetime sweep proper (separated so --profile can wrap it)."""
    systems = tuple(args.systems)
    if "baseline" not in systems:
        systems = ("baseline",) + systems
    print(f"{'workload':12}" + "".join(f"{s:>10}" for s in systems if s != "baseline")
          + f"{'base months':>13}{'WF months':>11}")
    cache_hits = cache_misses = 0
    waves = wave_ops = widest_wave = 0
    energy_rows: list[tuple[str, str, object]] = []
    for workload in args.workloads:
        study = run_workload_study(
            workload, systems=systems, n_lines=args.lines,
            endurance_mean=args.endurance, endurance_cov=args.cov,
            seed=args.seed, workers=args.workers,
            checkpoint_dir=args.checkpoint_dir,
            checkpoint_interval=args.checkpoint_interval or 0,
            resume=args.resume, progress=args.progress,
            batch=args.batch, tier_lines=args.tier_lines,
        )
        row = f"{workload:12}"
        for system in systems:
            if system != "baseline":
                row += f"{study.normalized[system]:10.2f}"
        row += f"{study.months('baseline'):13.1f}"
        wf = "comp_wf" if "comp_wf" in systems else systems[-1]
        row += f"{study.months(wf):11.1f}"
        print(row)
        for system, result in study.results.items():
            cache_hits += result.compression_cache_hits
            cache_misses += result.compression_cache_misses
            waves += result.batch_waves
            wave_ops += result.batch_wave_ops
            widest_wave = max(widest_wave, result.batch_wave_width_max)
            if args.energy:
                scheme = resolve_config(system).correction_scheme
                energy_rows.append(
                    (workload, system, result.energy_breakdown(scheme=scheme))
                )
    if energy_rows:
        print(f"{'workload':12}{'system':>14}{'pJ/write':>10}"
              f"{'array':>9}{'flags':>8}{'logic':>8}")
        for workload, system, b in energy_rows:
            writes = b.writes or 1
            print(f"{workload:12}{system:>14}{b.per_write_pj:10.1f}"
                  f"{b.array_pj / writes:9.1f}{b.flag_pj / writes:8.2f}"
                  f"{b.correction_pj / writes:8.2f}")
    lookups = cache_hits + cache_misses
    if lookups:
        print(f"compression cache: {cache_hits} hits / {cache_misses} misses "
              f"({cache_hits / lookups:.1%} hit rate)")
    if waves:
        print(f"batch scheduler: {wave_ops} writes in {waves} waves "
              f"(mean width {wave_ops / waves:.1f}, max {widest_wave})")


def _print_profile_summary(profiler, path: str, top: int = 20) -> None:
    """Print the top functions of a finished cProfile by cumulative time."""
    import pstats

    print(f"\nprofile written to {path}; top {top} by cumulative time:")
    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.strip_dirs().sort_stats("cumulative").print_stats(top)


def cmd_montecarlo(args: argparse.Namespace) -> None:
    """Run the Figure 9 tolerable-fault experiment."""
    schemes = [make_scheme(name) for name in args.schemes]
    print(f"{'data size':>10}" + "".join(f"{s.name:>14}" for s in schemes))
    for size in args.sizes:
        row = f"{size:>9}B"
        for scheme in schemes:
            row += f"{tolerable_faults(scheme, size, trials=args.trials, seed=args.seed):14.1f}"
        print(row)


def cmd_compress(args: argparse.Namespace) -> None:
    """Print Figures 3/6/11 compression statistics."""
    print(f"{'workload':12}{'BDI':>7}{'FPC':>7}{'BEST':>7}{'CR':>6}"
          f"{'P(size chg)':>13}{'<25B addr':>11}")
    for name in args.workloads:
        profile = get_profile(name)
        row = fig3_compressed_sizes(profile, writes=args.writes, seed=args.seed)
        change = fig6_size_change_probability(profile, writes=args.writes, seed=args.seed)
        values, cumulative = fig11_max_size_cdf(profile, writes=args.writes, seed=args.seed)
        below = cdf_fraction_below(values, cumulative, 25)
        print(f"{name:12}{row.bdi:7.1f}{row.fpc:7.1f}{row.best:7.1f}"
              f"{row.best_ratio:6.2f}{change:13.2f}{below:11.0%}")


def cmd_flips(args: argparse.Namespace) -> None:
    """Print the Figure 5 flip-direction split."""
    print(f"{'workload':12}{'increased':>11}{'untouched':>11}{'decreased':>11}")
    for name in args.workloads:
        result = classify_flip_impact(
            get_profile(name), writes=args.writes, seed=args.seed
        )
        print(f"{name:12}{result.increased:11.0%}{result.untouched:11.0%}"
              f"{result.decreased:11.0%}")


def cmd_perf(args: argparse.Namespace) -> None:
    """Print the Section V-B overhead model outputs."""
    model = PerformanceModel()
    print(f"{'workload':12}{'read overhead':>15}{'slowdown':>11}")
    for name in args.workloads:
        report = model.report(get_profile(name), samples=args.samples)
        print(f"{name:12}{report.read_latency_overhead:15.2%}{report.slowdown:11.3%}")


def cmd_energy(args: argparse.Namespace) -> int:
    """Run the energy x lifetime x throughput Pareto sweep."""
    import json as json_module
    from pathlib import Path

    from .energy import run_energy_sweep

    systems = tuple(args.systems) if args.systems else ENERGY_SWEEP_SYSTEMS
    points = run_energy_sweep(
        workloads=tuple(args.workloads), systems=systems,
        n_lines=args.lines, endurance_mean=args.endurance,
        max_writes=args.max_writes, seed=args.seed,
        mix_samples=args.samples,
    )
    payload = {"points": points}
    if args.out:
        Path(args.out).write_text(json_module.dumps(payload, indent=2) + "\n")
    if args.json:
        print(json_module.dumps(payload, indent=2))
        return 0
    print(f"{'workload':10}{'system':16}{'pJ/write':>10}{'array':>9}"
          f"{'flags':>8}{'logic':>8}{'writes':>10}{'Mreads/s':>10}")
    for point in points:
        energy = point["energy"]
        writes = point["writes_issued"] or 1
        array = (energy["array_set_pj"] + energy["array_reset_pj"]) / writes
        flags = (energy["flag_set_pj"] + energy["flag_reset_pj"]) / writes
        logic = (
            energy["correction_check_pj"] + energy["correction_commit_pj"]
        ) / writes
        marker = "  *" if point["pareto"] else ""
        print(f"{point['workload']:10}{point['system']:16}"
              f"{point['energy_per_write_pj']:10.1f}{array:9.1f}"
              f"{flags:8.2f}{logic:8.2f}{point['writes_issued']:10d}"
              f"{point['throughput_mreads_per_s']:10.2f}{marker}")
    print("* = Pareto frontier (min pJ/write, max lifetime, max throughput)")
    if args.out:
        print(f"points written to {args.out}")
    return 0


def cmd_trace(args: argparse.Namespace) -> None:
    """Generate and save a synthetic trace."""
    generator = SyntheticWorkload(
        get_profile(args.workload), n_lines=args.lines, seed=args.seed
    )
    trace = generator.generate_trace(args.writes)
    save_trace(trace, args.output)
    print(f"wrote {len(trace)} write-backs over {args.lines} lines "
          f"to {args.output}")


def cmd_systems(args: argparse.Namespace) -> None:
    """List the registered system specs and their stage composition."""
    specs = list_systems(tag=args.tag)
    width = max(len(spec.name) for spec in specs) + 2
    for spec in specs:
        tags = ",".join(spec.tags)
        print(f"{spec.name:{width}}[{tags}] {spec.description}")
        if args.stages:
            for line in spec.stage_summary():
                print(f"{'':{width}}  {line}")


def cmd_report(args: argparse.Namespace) -> None:
    """Print saved benchmark result files."""
    from pathlib import Path

    directory = Path(args.results_dir)
    if not directory.is_dir():
        print(f"no results at {directory}; run `pytest benchmarks/ "
              "--benchmark-only` first")
        return
    for path in sorted(directory.glob("*.txt")):
        if args.only and not any(token in path.stem for token in args.only):
            continue
        print("=" * 72)
        print(path.stem)
        print("=" * 72)
        print(path.read_text().rstrip())
        print()


def cmd_fuzz(args: argparse.Namespace) -> int:
    """Run differential fuzzing campaigns (or replay a corpus entry)."""
    from .validate.fuzz import (
        normalize_scheme,
        replay_corpus_entry,
        run_fuzz,
        write_campaign_manifest,
    )

    if args.replay:
        error = replay_corpus_entry(args.replay)
        if error is None:
            print(f"{args.replay}: does not reproduce (bug fixed?)")
            return 0
        print(f"{args.replay}: still diverges")
        print(error)
        return 1

    def progress(campaign) -> None:
        if campaign.skipped:
            status = "SKIPPED (time budget)"
        elif campaign.divergence is not None:
            status = "DIVERGED"
        else:
            status = "ok"
        line = (f"{campaign.system:22} {campaign.scheme:12} "
                f"{campaign.writes_run:>6} writes  {status}")
        if campaign.corpus_path is not None:
            line += f"  -> {campaign.corpus_path}"
        print(line)

    report = run_fuzz(
        systems=tuple(args.systems) if args.systems else None,
        schemes=tuple(normalize_scheme(s) for s in args.schemes),
        writes=args.writes, seed=args.seed, lines=args.lines,
        banks=args.banks, endurance_mean=args.endurance,
        endurance_cov=args.cov, corpus_dir=args.corpus,
        time_budget=args.time_budget,
        check_state_every=args.check_state_every,
        shrink=not args.no_shrink, progress=progress,
        shards=args.shards, batch=args.batch,
        tier_lines=args.tier_lines,
        wl_backend=args.wl_backend,
    )
    ran = [c for c in report.campaigns if not c.skipped]
    print(f"\n{len(ran)} campaigns, {sum(c.writes_run for c in ran)} writes, "
          f"{len(report.failures)} divergences, {len(report.skipped)} skipped "
          f"({report.elapsed_seconds:.1f}s)")
    if args.corpus:
        manifest = write_campaign_manifest(args.corpus, report, {
            "seed": args.seed, "writes": args.writes,
            "lines": args.lines, "banks": args.banks,
            "endurance_mean": args.endurance, "endurance_cov": args.cov,
            "shards": args.shards, "batch": args.batch,
            "tier_lines": args.tier_lines,
            "wl_backend": args.wl_backend,
            "systems": list(args.systems or system_names()),
            "schemes": [normalize_scheme(s) for s in args.schemes],
        })
        print(f"manifest: {manifest}")
    if report.failures:
        for campaign in report.failures:
            print(f"\n== {campaign.system} / {campaign.scheme} ==")
            print(campaign.divergence)
        return 1
    return 0


def _print_fleet_summary(result, config=None) -> None:
    """Human-readable fleet summary shared by ``serve`` and ``workload``."""
    stats = result.stats
    print(f"fleet: {result.shards} shard(s), {result.total_lines} lines, "
          f"{result.requests_routed:,} requests routed, "
          f"{result.recoveries} recover(ies)")
    print(f"  stored={stats.stored_writes:,} "
          f"(compressed={stats.compressed_writes:,}) "
          f"lost={stats.lost_writes:,} deaths={stats.deaths} "
          f"revivals={stats.revivals} dead={result.dead_fraction:.4f}")
    if config is not None:
        # Fleet-level energy telemetry: the merged stats price exactly
        # like a single bookkeeper's (the breakdown is additive over
        # the stats monoid, pinned by tests/energy/test_model.py).
        from .energy import EnergyModel

        breakdown = EnergyModel().breakdown(
            stats, scheme=config.correction_scheme
        )
        writes = breakdown.writes or 1
        print(f"  energy: {breakdown.per_write_pj:.1f} pJ/write "
              f"(array {breakdown.array_pj / writes:.1f}, "
              f"flags {breakdown.flag_pj / writes:.2f}, "
              f"correction logic {breakdown.correction_pj / writes:.2f})")
    for shard, (shard_stats, served) in enumerate(
        zip(result.shard_stats, result.shard_writes)
    ):
        print(f"  shard {shard}: {served:,} requests, "
              f"stored={shard_stats.stored_writes:,} "
              f"lost={shard_stats.lost_writes:,} "
              f"deaths={shard_stats.deaths}")


def cmd_serve(args: argparse.Namespace) -> int:
    """Boot the sharded memory service and drive a workload through it."""
    import json as json_module

    from .service import MemoryService, ShardedController, run_workload

    config = resolve_config(args.system)
    if args.inline:
        fleet = ShardedController(
            config, args.lines, shards=args.shards,
            endurance_mean=args.endurance, endurance_cov=args.cov,
            seed=args.seed, n_banks=args.banks,
            tier_lines=args.tier_lines,
        )
        run_workload(fleet, args.workload, args.requests,
                     batch=args.batch, seed=args.seed)
        from .service.service import ServiceResult

        result = ServiceResult(
            shards=fleet.shards, total_lines=fleet.total_lines,
            requests_routed=args.requests, recoveries=0,
            dead_fraction=fleet.dead_fraction, stats=fleet.stats,
            shard_stats=fleet.shard_stats(),
            shard_writes=[c.stats.demand_writes for c in fleet.controllers],
        )
    else:
        with MemoryService(
            config, args.lines, shards=args.shards,
            endurance_mean=args.endurance, endurance_cov=args.cov,
            seed=args.seed, n_banks=args.banks,
            tier_lines=args.tier_lines,
            telemetry_dir=args.telemetry_dir,
            heartbeat_interval=args.heartbeat_interval,
            fleet_interval=args.fleet_interval,
            retries=args.retries,
        ) as service:
            run_workload(service, args.workload, args.requests,
                         batch=args.batch, seed=args.seed)
            result = service.stop()
    if args.json:
        print(json_module.dumps(result.to_dict(), indent=2))
    else:
        _print_fleet_summary(result, config=config)
        if args.telemetry_dir:
            print(f"telemetry: {args.telemetry_dir}/fleet.jsonl + "
                  f"shard-<i>/events.jsonl")
    return 0


def cmd_workload(args: argparse.Namespace) -> int:
    """Generate a fleet-shaped stream; save it or run it in-process."""
    from .service import ShardedController, make_stream, run_workload

    if args.out is not None:
        from .traces.trace import Trace

        stream = make_stream(args.profile, args.lines, args.seed)
        trace = Trace(workload=stream.name, n_lines=args.lines)
        trace.extend(stream.iter_requests(args.requests))
        save_trace(trace, args.out)
        print(f"wrote {len(trace)} {args.profile} requests over "
              f"{args.lines} lines to {args.out}")
        return 0
    config = resolve_config(args.system)
    fleet = ShardedController(
        config, args.lines, shards=args.shards,
        endurance_mean=args.endurance, endurance_cov=args.cov,
        seed=args.seed, tier_lines=args.tier_lines,
    )
    run_workload(fleet, args.profile, args.requests,
                 batch=args.batch, seed=args.seed)
    from .service.service import ServiceResult

    _print_fleet_summary(ServiceResult(
        shards=fleet.shards, total_lines=fleet.total_lines,
        requests_routed=args.requests, recoveries=0,
        dead_fraction=fleet.dead_fraction, stats=fleet.stats,
        shard_stats=fleet.shard_stats(),
        shard_writes=[c.stats.demand_writes for c in fleet.controllers],
    ), config=config)
    return 0


_COMMANDS = {
    "lifetime": cmd_lifetime,
    "montecarlo": cmd_montecarlo,
    "compress": cmd_compress,
    "flips": cmd_flips,
    "perf": cmd_perf,
    "energy": cmd_energy,
    "trace": cmd_trace,
    "systems": cmd_systems,
    "report": cmd_report,
    "fuzz": cmd_fuzz,
    "serve": cmd_serve,
    "workload": cmd_workload,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "lifetime" and args.checkpoint_dir is None:
        # The durability knobs are meaningless without a directory to
        # put checkpoints in; fail loudly instead of silently ignoring.
        if args.resume:
            parser.error("--resume requires --checkpoint-dir")
        if args.checkpoint_interval is not None:
            parser.error("--checkpoint-interval requires --checkpoint-dir")
    # Commands return an exit code or None (== success); ``fuzz`` uses a
    # non-zero code to fail CI on divergence.
    status = _COMMANDS[args.command](args)
    return int(status or 0)


if __name__ == "__main__":
    sys.exit(main())
