"""Multi-level-cell (MLC) PCM wear model.

The paper evaluates SLC PCM but notes (footnote 1) that the proposed
approach applies to MLC as well, and that MLC is where lifetime
pressure is worst: storing two bits per cell cuts endurance to
1e5..1e6 writes [18] while doubling density.  This module provides an
MLC backend with the same interface as :class:`repro.pcm.bank.PCMBankArray`
so the controller and lifetime simulator run unchanged on it:

* a 512-bit line occupies 256 two-bit cells; logical bits ``2k`` and
  ``2k + 1`` live in cell ``k``;
* a write programs every cell whose *level* (bit pair) changes, and
  each program consumes one unit of that cell's endurance;
* a worn-out cell is stuck at its last level (or a forced level),
  pinning **both** of its bits -- so MLC faults always surface as
  adjacent-bit-pair errors, which is harder on correction schemes than
  SLC's independent single-bit faults.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .bits import bits_to_bytes, bytes_to_bits
from .block import BLOCK_BITS, WriteOutcome
from .cell import FaultMode
from .variation import EnduranceModel

#: Bits stored per MLC cell.
MLC_BITS_PER_CELL = 2
#: Cells backing one 64-byte line.
MLC_CELLS_PER_BLOCK = BLOCK_BITS // MLC_BITS_PER_CELL

#: Typical MLC endurance range from the paper's reference [18].
MLC_ENDURANCE_MEAN = 10**6


def mlc_endurance_model(
    mean: float = MLC_ENDURANCE_MEAN, cov: float = 0.15
) -> EnduranceModel:
    """An endurance model with MLC-typical parameters."""
    return EnduranceModel(mean=mean, cov=cov)


@dataclass(frozen=True)
class MLCWriteOutcome(WriteOutcome):
    """SLC-compatible outcome plus the cell-level program count."""

    programmed_cells: int = 0


class MLCBankArray:
    """Wear state for an array of lines stored in two-bit cells.

    Drop-in replacement for :class:`repro.pcm.bank.PCMBankArray`: the
    public surface speaks *bit* positions (what the controller and the
    correction schemes understand) while wear is tracked per cell.
    """

    def __init__(
        self,
        n_blocks: int,
        endurance_model: EnduranceModel,
        rng: np.random.Generator,
        fault_mode: FaultMode = FaultMode.STUCK_AT_LAST,
        base_line: int = 0,
    ) -> None:
        if n_blocks <= 0:
            raise ValueError("a bank needs at least one block")
        if base_line < 0:
            raise ValueError("base line cannot be negative")
        self.n_blocks = n_blocks
        self.fault_mode = fault_mode
        self.endurance_model = endurance_model
        #: First *global* logical line of the shard this array backs
        #: (0 for an unsharded memory); rows themselves stay local.
        self.base_line = base_line
        self.stored = np.zeros((n_blocks, BLOCK_BITS), dtype=np.uint8)
        self.counts = np.zeros((n_blocks, MLC_CELLS_PER_BLOCK), dtype=np.uint64)
        self.endurance = endurance_model.sample(
            (n_blocks, MLC_CELLS_PER_BLOCK), rng
        )
        # Incrementally maintained cell-level fault state (see
        # PCMBankArray): faults are monotone, so these grow in
        # O(new faults) per write.  `fault_counts` is bit-level
        # (matching `fault_counts_all`'s historical unit).
        self.faulty_cells = self.counts >= self.endurance
        self.fault_counts = (
            np.count_nonzero(self.faulty_cells, axis=1) * MLC_BITS_PER_CELL
        )

    # -- PCMBankArray-compatible interface -------------------------------

    def write(
        self,
        block_index: int,
        new_bits: np.ndarray,
        update_mask: np.ndarray | None = None,
    ) -> MLCWriteOutcome:
        """Program one line with differential-write semantics."""
        self._check_index(block_index)
        stored = self.stored[block_index]
        counts = self.counts[block_index]
        endurance = self.endurance[block_index]
        faulty_cells = self.faulty_cells[block_index]

        want = stored != new_bits.astype(np.uint8)
        if update_mask is not None:
            want = want & update_mask

        cell_wants = want.reshape(MLC_CELLS_PER_BLOCK, MLC_BITS_PER_CELL).any(axis=1)
        programmable_cells = cell_wants & ~faulty_cells
        touched_cells = np.flatnonzero(programmable_cells)

        counts[touched_cells] += 1
        writable_bits = np.repeat(programmable_cells, MLC_BITS_PER_CELL) & want
        stored[writable_bits] = new_bits[writable_bits]
        new_fault_cells = touched_cells[
            counts[touched_cells] >= endurance[touched_cells]
        ]

        # Mismatch reconstruction without rescanning `stored` (see
        # repro.pcm.block.apply_write): under stuck-at-last the errors
        # are exactly the wanted bits inside already-faulty cells; a
        # forced stuck value additionally breaks every bit of a newly
        # faulty cell whose forced value is wrong -- *both* bits are
        # forced, even ones the write never asked to change.
        stuck = want & np.repeat(faulty_cells, MLC_BITS_PER_CELL)
        if self.fault_mode is not FaultMode.STUCK_AT_LAST and new_fault_cells.size:
            forced = 1 if self.fault_mode is FaultMode.STUCK_AT_SET else 0
            forced_bits = (
                new_fault_cells[:, None] * MLC_BITS_PER_CELL
                + np.arange(MLC_BITS_PER_CELL)
            ).ravel()
            stored[forced_bits] = forced
            bad = forced_bits[new_bits[forced_bits] != forced]
            if update_mask is not None:
                bad = bad[update_mask[bad]]
            stuck[bad] = True
        faulty_cells[new_fault_cells] = True
        self.fault_counts[block_index] += new_fault_cells.size * MLC_BITS_PER_CELL

        new_fault_bits = (
            new_fault_cells[:, None] * MLC_BITS_PER_CELL
            + np.arange(MLC_BITS_PER_CELL)
        ).ravel()
        programmed_bits = int(np.count_nonzero(writable_bits))
        set_bits = int(np.count_nonzero(writable_bits & (new_bits == 1)))
        return MLCWriteOutcome(
            attempted_flips=int(np.count_nonzero(want)),
            programmed_flips=programmed_bits,
            set_flips=set_bits,
            reset_flips=programmed_bits - set_bits,
            new_fault_positions=new_fault_bits,
            error_positions=np.flatnonzero(stuck),
            programmed_cells=touched_cells.size,
        )

    def write_bytes(
        self,
        block_index: int,
        data: bytes,
        update_mask: np.ndarray | None = None,
    ) -> MLCWriteOutcome:
        """Byte-level convenience wrapper around :meth:`write`."""
        return self.write(block_index, bytes_to_bits(data), update_mask)

    def read_bits(self, block_index: int) -> np.ndarray:
        """The line's current cell values (0/1 array)."""
        self._check_index(block_index)
        return self.stored[block_index]

    def read_bytes(self, block_index: int) -> bytes:
        """The line's current content as 64 bytes."""
        return bits_to_bytes(self.read_bits(block_index))

    def faulty_mask(self, block_index: int) -> np.ndarray:
        """Per-*bit* fault mask (both bits of a dead cell are stuck)."""
        self._check_index(block_index)
        return np.repeat(self.faulty_cells[block_index], MLC_BITS_PER_CELL)

    def fault_positions(self, block_index: int) -> np.ndarray:
        """Indices of worn-out cells, ascending."""
        return np.flatnonzero(self.faulty_mask(block_index))

    def fault_count(self, block_index: int) -> int:
        """Number of worn-out cells."""
        self._check_index(block_index)
        return int(self.fault_counts[block_index])

    def fault_counts_all(self) -> np.ndarray:
        """Fault count of every block (maintained, O(n_blocks))."""
        return self.fault_counts.copy()

    def total_programmed_flips(self) -> int:
        """Total cell programs (the MLC wear/energy unit)."""
        return int(self.counts.sum())

    def _check_index(self, block_index: int) -> None:
        if not 0 <= block_index < self.n_blocks:
            raise IndexError(
                f"block {block_index} out of range [0, {self.n_blocks})"
            )
