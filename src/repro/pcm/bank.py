"""Vectorized wear model for a whole PCM bank (array of lines).

This is the hot path of the lifetime simulator: all per-cell state for
``n_blocks`` lines lives in three contiguous numpy arrays, and a write
touches exactly one row.  The write semantics are shared with
:class:`repro.pcm.block.MemoryBlock` through
:func:`repro.pcm.block.apply_write`.
"""

from __future__ import annotations

import numpy as np

from .bits import bits_to_bytes, bytes_to_bits
from .block import BLOCK_BITS, WriteOutcome, apply_write
from .cell import FaultMode
from .variation import EnduranceModel


def write_rows_arrays(
    stored_all: np.ndarray,
    counts_all: np.ndarray,
    endurance_all: np.ndarray,
    faulty_all: np.ndarray,
    fault_counts_all: np.ndarray,
    row_writes_all: np.ndarray,
    no_wear_limit_all: np.ndarray,
    rows: np.ndarray,
    targets: np.ndarray,
    masks: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """The :meth:`PCMBankArray.write_rows` kernel over bare arrays.

    A module-level function so the bank-parallel executor's worker
    processes can run it directly on shared-memory views of the bank
    state (see :mod:`repro.engine.bank_parallel`) -- the method
    delegates here.  ``STUCK_AT_LAST`` semantics; ``rows`` must be
    distinct.  Touches only state belonging to ``rows``, so concurrent
    calls over disjoint row sets are race-free.
    """
    row_writes = row_writes_all[rows] + 1
    row_writes_all[rows] = row_writes
    if (row_writes <= no_wear_limit_all[rows]).all():
        # Wear-free rows (the common case until late life): no
        # faulty cells exist and none can appear this write, so the
        # fault mask, the endurance compare, and the worn scatter
        # all drop out.
        stored = stored_all[rows]
        want = stored != targets
        if masks is not None:
            want &= masks
            np.copyto(stored, targets, where=want)
            stored_all[rows] = stored
        else:
            stored_all[rows] = targets
        counts_all[rows] += want
        programmed = want.sum(axis=1)
        set_flips = (want & (targets != 0)).sum(axis=1)
        return programmed, set_flips, np.zeros(len(rows), dtype=np.int64)
    stored = stored_all[rows]
    want = stored != targets
    if masks is not None:
        want &= masks
    want &= ~faulty_all[rows]
    new_counts = counts_all[rows] + want
    worn = want & (new_counts >= endurance_all[rows])
    np.copyto(stored, targets, where=want)
    stored_all[rows] = stored
    counts_all[rows] = new_counts
    worn_per_row = worn.sum(axis=1)
    if worn_per_row.any():
        faulty_all[rows] |= worn
        fault_counts_all[rows] += worn_per_row
    programmed = want.sum(axis=1)
    set_flips = (want & (targets != 0)).sum(axis=1)
    return programmed, set_flips, worn_per_row


class PCMBankArray:
    """Per-cell wear state for an array of 64-byte PCM lines."""

    def __init__(
        self,
        n_blocks: int,
        endurance_model: EnduranceModel,
        rng: np.random.Generator,
        fault_mode: FaultMode = FaultMode.STUCK_AT_LAST,
        base_line: int = 0,
    ) -> None:
        if n_blocks <= 0:
            raise ValueError("a bank needs at least one block")
        if base_line < 0:
            raise ValueError("base line cannot be negative")
        self.n_blocks = n_blocks
        self.fault_mode = fault_mode
        self.endurance_model = endurance_model
        #: First *global* logical line of the shard this array backs
        #: (0 for an unsharded memory).  Array rows are always local;
        #: the offset only labels them globally (wear maps, telemetry).
        self.base_line = base_line
        self.stored = np.zeros((n_blocks, BLOCK_BITS), dtype=np.uint8)
        self.counts = np.zeros((n_blocks, BLOCK_BITS), dtype=np.uint64)
        self.endurance = endurance_model.sample((n_blocks, BLOCK_BITS), rng)
        # Incrementally maintained fault state: stuck-at faults are
        # monotone, so `faulty` and the per-block totals only ever grow,
        # updated in O(new faults) per write instead of rescanning
        # `counts >= endurance` (512 uint64 compares) on every query.
        self.faulty = self.counts >= self.endurance
        self.fault_counts = np.count_nonzero(self.faulty, axis=1)
        # Cheap per-row wear bound for the batched fast path: one write
        # programs each cell at most once, so every cell's count is
        # bounded by the number of writes the row has absorbed.  A row
        # whose write total is still at most ``no_wear_limit`` (its
        # weakest cell's endurance minus one) provably has no faulty
        # cell and cannot wear one out on the next write, which lets
        # :meth:`write_rows` skip the per-cell endurance/fault scans.
        self.row_writes = np.zeros(n_blocks, dtype=np.int64)
        self.no_wear_limit = self.endurance.min(axis=1).astype(np.int64) - 1

    def write(
        self,
        block_index: int,
        new_bits: np.ndarray,
        update_mask: np.ndarray | None = None,
    ) -> WriteOutcome:
        """Program one line; see :func:`repro.pcm.block.apply_write`."""
        self._check_index(block_index)
        outcome = apply_write(
            self.stored[block_index],
            self.counts[block_index],
            self.endurance[block_index],
            new_bits,
            self.fault_mode,
            update_mask,
            faulty=self.faulty[block_index],
            has_faults=bool(self.fault_counts[block_index]),
        )
        self.row_writes[block_index] += 1
        worn = outcome.new_fault_positions.size
        if worn:
            self.fault_counts[block_index] += worn
        return outcome

    def write_bytes(
        self,
        block_index: int,
        data: bytes,
        update_mask: np.ndarray | None = None,
    ) -> WriteOutcome:
        """Byte-level convenience wrapper around :meth:`write`."""
        return self.write(block_index, bytes_to_bits(data), update_mask)

    def write_rows(
        self,
        rows: np.ndarray,
        targets: np.ndarray,
        masks: np.ndarray | None = None,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Differential write of K *distinct* lines in one vectorized pass.

        ``rows`` is a ``(K,)`` line-index vector -- duplicates are not
        allowed, the fancy-indexed scatter would silently drop all but
        one update per line -- ``targets`` a ``(K, 512)`` 0/1 matrix and
        ``masks`` a ``(K, 512)`` boolean update-mask matrix, or ``None``
        to treat every cell as updatable (windowed callers overlay the
        payload on a copy of the stored rows, so out-of-window cells
        compare equal and are untouched without a mask).  Row ``j`` has
        exactly the :meth:`write` semantics under ``STUCK_AT_LAST``
        faults: cells outside the mask, already-faulty cells, and cells
        whose stored value matches the target are untouched; every
        programmed cell's count is bumped, and cells reaching their
        endurance limit become stuck at the value just written.

        Returns ``(programmed, set_flips, new_faults)``, one ``(K,)``
        vector each, aligned with ``rows``.
        """
        if self.fault_mode is not FaultMode.STUCK_AT_LAST:
            raise ValueError("write_rows supports STUCK_AT_LAST faults only")
        return write_rows_arrays(
            self.stored, self.counts, self.endurance, self.faulty,
            self.fault_counts, self.row_writes, self.no_wear_limit,
            rows, targets, masks,
        )

    def read_bits(self, block_index: int) -> np.ndarray:
        """The line's current cell values (0/1 array)."""
        self._check_index(block_index)
        return self.stored[block_index]

    def read_bytes(self, block_index: int) -> bytes:
        """The line's current content as 64 bytes."""
        return bits_to_bytes(self.read_bits(block_index))

    def faulty_mask(self, block_index: int) -> np.ndarray:
        """Boolean mask of worn-out cells (a view of maintained state).

        Callers must treat the returned row as read-only; it is the
        incrementally maintained fault mask, not a fresh array.
        """
        self._check_index(block_index)
        return self.faulty[block_index]

    def fault_positions(self, block_index: int) -> np.ndarray:
        """Indices of worn-out cells, ascending."""
        return np.flatnonzero(self.faulty_mask(block_index))

    def fault_count(self, block_index: int) -> int:
        """Number of worn-out cells."""
        self._check_index(block_index)
        return int(self.fault_counts[block_index])

    def fault_counts_all(self) -> np.ndarray:
        """Fault count of every block (maintained, O(n_blocks))."""
        return self.fault_counts.copy()

    def total_programmed_flips(self) -> int:
        """Total cell programs so far (energy/wear proxy)."""
        return int(self.counts.sum())

    def _check_index(self, block_index: int) -> None:
        if not 0 <= block_index < self.n_blocks:
            raise IndexError(
                f"block {block_index} out of range [0, {self.n_blocks})"
            )
