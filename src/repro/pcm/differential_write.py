"""Differential write (DW): the chip-level read-modify-write circuit.

Every PCM chip in the paper's baseline embeds RMW logic [13]: on a
write it reads the old line, compares bit-by-bit with the new data, and
programs only the differing cells.  DW is what makes *bit flips* --
rather than writes -- the unit of wear, and its randomly scattered flip
pattern (Figure 1) is the inefficiency the paper attacks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .bits import bytes_to_bits, flip_mask


@dataclass(frozen=True)
class WritePlan:
    """The cell updates a differential write would program.

    Attributes:
        flips: Boolean mask over cell positions that must change.
        flip_count: Number of cells to program (``flips.sum()``).
        set_count: Flips programming a ``1`` (SET pulse).
        reset_count: Flips programming a ``0`` (RESET pulse; the
            expensive, wear-dominant transition).
    """

    flips: np.ndarray
    flip_count: int
    set_count: int
    reset_count: int


def plan_write(old_bits: np.ndarray, new_bits: np.ndarray) -> WritePlan:
    """Compute the differential-write plan between two cell images."""
    flips = flip_mask(old_bits, new_bits)
    flip_count = int(np.count_nonzero(flips))
    set_count = int(np.count_nonzero(flips & (new_bits == 1)))
    return WritePlan(
        flips=flips,
        flip_count=flip_count,
        set_count=set_count,
        reset_count=flip_count - set_count,
    )


def bit_flips(old: bytes, new: bytes) -> int:
    """Number of cells a differential write of ``new`` over ``old`` programs."""
    return plan_write(bytes_to_bits(old), bytes_to_bits(new)).flip_count


def flip_positions(old: bytes, new: bytes) -> np.ndarray:
    """Cell indices a differential write would program, ascending."""
    plan = plan_write(bytes_to_bits(old), bytes_to_bits(new))
    return np.flatnonzero(plan.flips)
