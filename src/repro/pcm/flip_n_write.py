"""Flip-N-Write (Cho and Lee, MICRO 2009 -- the paper's reference [25]).

A more aggressive bit-flip reducer than plain differential writes: the
line is split into fixed-size words, and for each word the circuit
writes either the data or its complement -- whichever differs from the
stored content in fewer cells -- plus one flag bit recording the choice.
At most half the bits of any word are ever programmed.

The PCM paper treats Flip-N-Write as a DW alternative; we provide it as
an ablation baseline (``benchmarks/test_ablation_write_reduction.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .bits import flip_mask


@dataclass(frozen=True)
class FlipNWriteResult:
    """Outcome of Flip-N-Write encoding one line.

    Attributes:
        stored_bits: The cell image after the write (data or per-word
            complement), excluding flag bits.
        flags: Per-word inversion flags (1 = word stored complemented).
        flip_count: Total cells programmed, including flag-bit updates.
    """

    stored_bits: np.ndarray
    flags: np.ndarray
    flip_count: int


class FlipNWrite:
    """Flip-N-Write encoder over fixed-size words."""

    def __init__(self, word_bits: int = 32) -> None:
        if word_bits <= 0:
            raise ValueError("word size must be positive")
        self.word_bits = word_bits

    def encode(
        self,
        old_bits: np.ndarray,
        old_flags: np.ndarray,
        new_bits: np.ndarray,
    ) -> FlipNWriteResult:
        """Choose per-word inversion minimizing programmed cells.

        Args:
            old_bits: Current cell image (possibly complemented words).
            old_flags: Current per-word inversion flags.
            new_bits: The logical data to store.

        Returns:
            The new cell image, flags, and total flip count.
        """
        if old_bits.size % self.word_bits != 0:
            raise ValueError(
                f"line of {old_bits.size} bits is not divisible into "
                f"{self.word_bits}-bit words"
            )
        word_count = old_bits.size // self.word_bits
        if old_flags.size != word_count:
            raise ValueError("flag count must equal word count")

        old_words = old_bits.reshape(word_count, self.word_bits)
        new_words = new_bits.reshape(word_count, self.word_bits)
        inverted_words = 1 - new_words

        direct_flips = np.count_nonzero(old_words != new_words, axis=1)
        inverted_flips = np.count_nonzero(old_words != inverted_words, axis=1)
        # Flag-bit flips count toward wear too.
        direct_cost = direct_flips + (old_flags != 0)
        inverted_cost = inverted_flips + (old_flags != 1)

        invert = inverted_cost < direct_cost
        stored = np.where(invert[:, None], inverted_words, new_words)
        flags = invert.astype(np.uint8)
        total = int(np.where(invert, inverted_cost, direct_cost).sum())
        return FlipNWriteResult(stored.reshape(-1), flags, total)

    def decode(self, stored_bits: np.ndarray, flags: np.ndarray) -> np.ndarray:
        """Recover the logical data from the cell image and flags."""
        word_count = stored_bits.size // self.word_bits
        words = stored_bits.reshape(word_count, self.word_bits)
        logical = np.where(flags[:, None].astype(bool), 1 - words, words)
        return logical.reshape(-1).astype(np.uint8)

    def upper_bound_flips(self, line_bits: int) -> int:
        """Flip-N-Write's guarantee: at most half of each word + flag."""
        words = line_bits // self.word_bits
        return words * (self.word_bits // 2 + 1)


def naive_flip_count(old_bits: np.ndarray, new_bits: np.ndarray) -> int:
    """Plain DW flips, for comparing against Flip-N-Write."""
    return int(np.count_nonzero(flip_mask(old_bits, new_bits)))
