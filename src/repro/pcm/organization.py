"""DIMM-level organization of the PCM main memory (Figure 2, Table II).

The baseline is a DDRx ECC-DIMM: each rank has nine x8 chips (eight
data + one ECC), a cache line is interleaved across all chips of a
rank, and the ninth chip's 64 bits per line hold the error-correction
metadata (ECP-6 uses 61 of them, leaving 3 spare bits -- one of which
the paper reuses as the per-line "compressed?" flag).
"""

from __future__ import annotations

from dataclasses import dataclass

#: Data chips per rank.
DATA_CHIPS_PER_RANK = 8
#: Total chips per rank, including the ECC chip.
CHIPS_PER_RANK = 9
#: Bits contributed by each chip per line (x8 chip, burst of 8).
BITS_PER_CHIP_PER_LINE = 64
#: ECC-chip bits available to the correction scheme per line.
ECC_BITS_PER_LINE = BITS_PER_CHIP_PER_LINE


@dataclass(frozen=True)
class PhysicalLocation:
    """Where a physical line index lands in the memory topology."""

    channel: int
    rank: int
    bank: int
    row: int


@dataclass(frozen=True)
class MemoryOrganization:
    """Topology of the PCM main memory.

    The paper's full-scale configuration (Table II) is 4 GB over 2
    channels with 4 banks per rank; simulations default to a scaled-down
    line count, which this class also describes (the topology shape is
    preserved, only rows shrink).
    """

    line_bytes: int = 64
    page_bytes: int = 4096
    channels: int = 2
    dimms_per_channel: int = 1
    ranks_per_dimm: int = 1
    banks_per_rank: int = 4
    rows_per_bank: int = 2**23  # 4 GB total at the defaults

    def __post_init__(self) -> None:
        for name in (
            "line_bytes",
            "page_bytes",
            "channels",
            "dimms_per_channel",
            "ranks_per_dimm",
            "banks_per_rank",
            "rows_per_bank",
        ):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if self.page_bytes % self.line_bytes != 0:
            raise ValueError("page size must be a multiple of the line size")

    @property
    def total_ranks(self) -> int:
        """Ranks across all channels and DIMMs."""
        return self.channels * self.dimms_per_channel * self.ranks_per_dimm

    @property
    def total_banks(self) -> int:
        """Banks across the whole memory."""
        return self.total_ranks * self.banks_per_rank

    @property
    def total_lines(self) -> int:
        """64-byte lines across the whole memory."""
        return self.total_banks * self.rows_per_bank

    @property
    def capacity_bytes(self) -> int:
        """Total data capacity in bytes."""
        return self.total_lines * self.line_bytes

    @property
    def lines_per_page(self) -> int:
        """Cache lines per OS page."""
        return self.page_bytes // self.line_bytes

    def locate(self, line_index: int) -> PhysicalLocation:
        """Decompose a physical line index into the topology.

        Lines are interleaved channel-first, then bank, then row --
        consecutive lines hit different channels/banks, the standard
        mapping for bank-level parallelism.
        """
        if not 0 <= line_index < self.total_lines:
            raise IndexError(
                f"line {line_index} out of range [0, {self.total_lines})"
            )
        channel = line_index % self.channels
        remainder = line_index // self.channels
        bank_global = remainder % (self.banks_per_rank * self.total_ranks // self.channels)
        row = remainder // (self.banks_per_rank * self.total_ranks // self.channels)
        ranks_per_channel = self.total_ranks // self.channels
        rank, bank = divmod(bank_global, self.banks_per_rank)
        del ranks_per_channel
        return PhysicalLocation(channel=channel, rank=rank, bank=bank, row=row)

    def line_of(self, location: PhysicalLocation) -> int:
        """Inverse of :meth:`locate`."""
        banks_per_channel = self.banks_per_rank * self.total_ranks // self.channels
        bank_global = location.rank * self.banks_per_rank + location.bank
        remainder = location.row * banks_per_channel + bank_global
        return remainder * self.channels + location.channel

    def scaled(self, total_lines: int) -> "MemoryOrganization":
        """A same-shape organization with ``total_lines`` lines.

        Used by the lifetime simulator to run at laptop scale while
        keeping channel/bank interleaving identical.
        """
        if total_lines % self.total_banks != 0:
            raise ValueError(
                f"total_lines must be a multiple of {self.total_banks} "
                "to preserve the topology shape"
            )
        return MemoryOrganization(
            line_bytes=self.line_bytes,
            page_bytes=self.page_bytes,
            channels=self.channels,
            dimms_per_channel=self.dimms_per_channel,
            ranks_per_dimm=self.ranks_per_dimm,
            banks_per_rank=self.banks_per_rank,
            rows_per_bank=total_lines // self.total_banks,
        )
