"""Wear-aware storage model for PCM memory lines.

The model tracks, per cell: the stored value, the number of times the
cell was actually programmed (bit flips, i.e. post-differential-write
writes), and the cell's endurance limit.  A cell whose flip count
reaches its endurance limit becomes a stuck-at fault: subsequent
programs are silently ineffective, which the controller observes as a
write-verify mismatch.

:class:`MemoryBlock` is the readable single-line model;
:func:`apply_write` is the underlying row operation that
:class:`repro.pcm.bank.PCMBankArray` reuses over views into its large
arrays, so both models share one set of semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .bits import bits_to_bytes, bytes_to_bits
from .cell import FaultMode
from .variation import EnduranceModel

#: Cells per memory line (64 bytes).
BLOCK_BITS = 512

#: Shared empty position vector for fault-free outcomes (read-only).
_NO_POSITIONS = np.empty(0, dtype=np.intp)
_NO_POSITIONS.setflags(write=False)


@dataclass(frozen=True)
class WriteOutcome:
    """What happened when one line was written.

    Attributes:
        attempted_flips: Cells the differential write wanted to change.
        programmed_flips: Cells actually programmed (healthy cells only);
            this is the wear and energy cost of the write.
        set_flips: Programmed cells driven to ``1`` (SET pulses: long,
            low current).
        reset_flips: Programmed cells driven to ``0`` (RESET pulses:
            short, high current -- the wear-dominant transition).
        new_fault_positions: Cells that wore out during this write.
        error_positions: Cells whose stored value differs from the
            requested value after the write -- the stuck-at errors a
            read-verify would report to the correction scheme.
    """

    attempted_flips: int
    programmed_flips: int
    set_flips: int
    reset_flips: int
    new_fault_positions: np.ndarray
    error_positions: np.ndarray

    @property
    def clean(self) -> bool:
        """True when the write landed with no stuck-at mismatch."""
        return self.error_positions.size == 0


#: Shared outcome for a differential-write no-op on a fault-free line
#: (immutable, so every such write can return the same object).
_CLEAN_OUTCOME = WriteOutcome(
    attempted_flips=0,
    programmed_flips=0,
    set_flips=0,
    reset_flips=0,
    new_fault_positions=_NO_POSITIONS,
    error_positions=_NO_POSITIONS,
)


def apply_write(
    stored: np.ndarray,
    counts: np.ndarray,
    endurance: np.ndarray,
    new_bits: np.ndarray,
    fault_mode: FaultMode = FaultMode.STUCK_AT_LAST,
    update_mask: np.ndarray | None = None,
    faulty: np.ndarray | None = None,
    has_faults: bool | None = None,
) -> WriteOutcome:
    """Program one line in place with differential-write semantics.

    Args:
        stored: Current cell values (0/1), modified in place.
        counts: Per-cell program counts, modified in place.
        endurance: Per-cell endurance limits.
        new_bits: Desired cell values (0/1).
        fault_mode: What value a cell sticks at when it wears out.
        update_mask: Optional boolean mask restricting which cells the
            controller intends to program (e.g. only the compression
            window plus metadata).  Cells outside the mask are left
            untouched and never reported as errors.
        faulty: Optional maintained boolean fault mask for the line.
            When given it must equal ``counts >= endurance`` on entry;
            it is updated in place in O(new faults), sparing the caller
            (and this function) any full ``counts >= endurance`` rescan.
            Stuck-at faults are monotone, so the mask only ever gains
            ``True`` entries.
        has_faults: Optional hint whether ``faulty`` has any ``True``
            entry on entry (callers with a maintained fault count know
            this for free); computed from ``faulty`` when omitted.
    """
    want = stored != new_bits
    if update_mask is not None:
        want &= update_mask
    if faulty is None:
        tracked = False
        faulty = counts >= endurance
    else:
        tracked = True
    # Most lines have no faults for most of their life; skipping the
    # fault-mask arithmetic on them roughly halves this function.
    if has_faults is None:
        has_faults = bool(faulty.any())

    if has_faults:
        # want & ~faulty in a single ufunc (True > False on booleans).
        touched = (want > faulty).nonzero()[0]
    else:
        touched = want.nonzero()[0]
        if touched.size == 0:
            # Differential-write no-op on a healthy line (the common
            # steady state when a trace is replayed): nothing to
            # program, no errors possible.
            return _CLEAN_OUTCOME
    bumped = counts[touched] + 1
    counts[touched] = bumped
    stored[touched] = new_bits[touched]
    new_faults = touched[bumped >= endurance[touched]]

    # Post-write mismatches, reconstructed without rescanning `stored`:
    # a stuck-at-last fault never produces new errors beyond the stuck
    # cells the write wanted to change (programmed cells match by
    # construction, and a cell that wears out *during* the write holds
    # the value just written).  Forced stuck-at values additionally
    # break every newly faulty cell whose forced value is wrong.
    forced_wrong = None
    if fault_mode is not FaultMode.STUCK_AT_LAST and new_faults.size:
        forced = 1 if fault_mode is FaultMode.STUCK_AT_SET else 0
        stored[new_faults] = forced
        forced_wrong = new_faults[new_bits[new_faults] != forced]
    if has_faults:
        stuck = want & faulty
        if forced_wrong is not None:
            stuck[forced_wrong] = True
        errors = stuck.nonzero()[0]
        attempted = int(np.count_nonzero(want))
    else:
        # No pre-existing stuck cells: the only possible mismatches are
        # newly worn cells forced to the wrong value (already sorted).
        errors = forced_wrong if forced_wrong is not None else _NO_POSITIONS
        attempted = touched.size
    if tracked:
        faulty[new_faults] = True

    programmed = touched.size
    set_flips = int(np.count_nonzero(new_bits[touched]))
    return WriteOutcome(
        attempted_flips=attempted,
        programmed_flips=programmed,
        set_flips=set_flips,
        reset_flips=programmed - set_flips,
        new_fault_positions=new_faults,
        error_positions=errors,
    )


@dataclass
class MemoryBlock:
    """A single 64-byte PCM line with per-cell wear state."""

    endurance: np.ndarray
    fault_mode: FaultMode = FaultMode.STUCK_AT_LAST
    stored: np.ndarray = field(default=None)  # type: ignore[assignment]
    counts: np.ndarray = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        self.endurance = np.asarray(self.endurance, dtype=np.uint64)
        if self.endurance.shape != (BLOCK_BITS,):
            raise ValueError(
                f"endurance must have shape ({BLOCK_BITS},), "
                f"got {self.endurance.shape}"
            )
        if self.stored is None:
            self.stored = np.zeros(BLOCK_BITS, dtype=np.uint8)
        else:
            self.stored = np.asarray(self.stored, dtype=np.uint8)
        if self.counts is None:
            self.counts = np.zeros(BLOCK_BITS, dtype=np.uint64)
        else:
            # Coerce like `endurance`: a signed caller-supplied array
            # would make `counts >= endurance` promote both sides to
            # float64 (NEP 50), silently mis-comparing above 2**53.
            self.counts = np.asarray(self.counts, dtype=np.uint64)

    @classmethod
    def fresh(
        cls,
        model: EnduranceModel,
        rng: np.random.Generator,
        fault_mode: FaultMode = FaultMode.STUCK_AT_LAST,
    ) -> "MemoryBlock":
        """A new block with endurance sampled from ``model``."""
        return cls(endurance=model.sample(BLOCK_BITS, rng), fault_mode=fault_mode)

    @property
    def faulty(self) -> np.ndarray:
        """Boolean mask of worn-out cells."""
        return self.counts >= self.endurance

    @property
    def fault_count(self) -> int:
        """Number of worn-out cells."""
        return int(np.count_nonzero(self.faulty))

    def fault_positions(self) -> np.ndarray:
        """Indices of worn-out cells, ascending."""
        return np.flatnonzero(self.faulty)

    def read_bytes(self) -> bytes:
        """The line's current content as 64 bytes."""
        return bits_to_bytes(self.stored)

    def write_bytes(self, data: bytes, update_mask: np.ndarray | None = None) -> WriteOutcome:
        """Byte-level convenience wrapper around :meth:`write`."""
        return self.write_bits(bytes_to_bits(data), update_mask)

    def write_bits(
        self, new_bits: np.ndarray, update_mask: np.ndarray | None = None
    ) -> WriteOutcome:
        """Bit-level write; see :func:`apply_write` for semantics."""
        if new_bits.shape != (BLOCK_BITS,):
            raise ValueError(f"expected {BLOCK_BITS} bits, got {new_bits.shape}")
        return apply_write(
            self.stored,
            self.counts,
            self.endurance,
            new_bits.astype(np.uint8),
            self.fault_mode,
            update_mask,
        )
