"""PCM device timing and energy parameters (Table II).

The paper configures a DDR3-style interface with PCM array timings
taken from Lee et al. [5] / NVSim [27]; these constants feed the
performance-overhead model (Section V-B) in :mod:`repro.perf`.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PCMTimings:
    """Array and interface timing parameters.

    Array latencies are in nanoseconds; interface timings are in memory
    bus cycles at ``bus_mhz`` (Table II uses a 400 MHz DDR interface,
    i.e. 2.5 ns per cycle, burst length 8).
    """

    read_ns: float = 48.0
    reset_ns: float = 40.0
    set_ns: float = 150.0
    bus_mhz: float = 400.0
    burst_length: int = 8
    t_rcd: int = 60
    t_cl: int = 5
    t_wl: int = 4
    t_ccd: int = 4
    t_wtr: int = 4
    t_rtp: int = 3
    t_rp: int = 60
    t_rrd_act: int = 2
    t_rrd_pre: int = 11

    def __post_init__(self) -> None:
        if self.bus_mhz <= 0:
            raise ValueError("bus frequency must be positive")
        if self.burst_length <= 0:
            raise ValueError("burst length must be positive")

    @property
    def cycle_ns(self) -> float:
        """Duration of one memory bus cycle in nanoseconds."""
        return 1000.0 / self.bus_mhz

    @property
    def write_ns(self) -> float:
        """Worst-case array write latency (SET dominates RESET)."""
        return max(self.set_ns, self.reset_ns)

    @property
    def burst_cycles(self) -> int:
        """Bus cycles to transfer one 64-byte line over the 72-bit bus."""
        return self.burst_length

    def read_latency_cycles(self) -> int:
        """Idle-bank read latency in bus cycles (activate + CAS + burst)."""
        return self.t_rcd + self.t_cl + self.burst_cycles

    def write_latency_cycles(self) -> int:
        """Idle-bank write latency in bus cycles (activate + WL + burst)."""
        return self.t_rcd + self.t_wl + self.burst_cycles


@dataclass(frozen=True)
class PCMEnergy:
    """Per-operation energy parameters (picojoules per cell program).

    RESET pulses are short but high-current; SET pulses are long and
    low-current.  Only relative magnitudes matter for the energy
    accounting in the lifetime simulator.
    """

    read_pj_per_bit: float = 2.0
    set_pj_per_bit: float = 19.2
    reset_pj_per_bit: float = 13.5

    def write_energy_pj(self, set_flips: int, reset_flips: int) -> float:
        """Array energy to program the given flip counts."""
        return set_flips * self.set_pj_per_bit + reset_flips * self.reset_pj_per_bit
