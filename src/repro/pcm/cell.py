"""Single-cell PCM semantics: states, fault modes, endurance.

The hot simulation path uses the vectorized :mod:`repro.pcm.bank`
model; this module defines the shared vocabulary (states, fault modes)
plus a reference single-cell implementation used by unit tests and by
the documentation examples.  Keeping an object-level model around makes
the vectorized model's semantics checkable against something readable.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class CellState(enum.IntEnum):
    """Logical PCM cell states (SLC).

    A SET (crystalline, low-resistance) cell reads as ``1``; a RESET
    (amorphous, high-resistance) cell reads as ``0``.  The mapping is a
    convention -- what matters for wear is that SET-to-RESET transitions
    dominate wear-out (Section II-B).
    """

    RESET = 0
    SET = 1


class FaultMode(enum.Enum):
    """How a worn-out cell fails (Section II-B).

    ``STUCK_AT_LAST`` models the observable behaviour the architecture
    schemes rely on: after the final successful program operation the
    cell no longer changes, so it is stuck at whatever value it last
    held.  ``STUCK_AT_SET`` / ``STUCK_AT_RESET`` force the stuck value,
    matching the device-level failure taxonomy (stuck-at-SET from GST
    crystallinity loss, stuck-at-RESET from electrode detachment).
    """

    STUCK_AT_LAST = "last"
    STUCK_AT_SET = "set"
    STUCK_AT_RESET = "reset"


@dataclass
class PCMCell:
    """Reference single-cell model with write endurance.

    A write that actually changes the stored value (a "bit flip", which
    is what survives differential-write filtering) consumes one unit of
    endurance.  Once ``writes_used`` reaches ``endurance`` the cell is
    stuck: further writes are silently ineffective, which is exactly how
    a stuck-at fault manifests to the read-verify logic.
    """

    endurance: int
    fault_mode: FaultMode = FaultMode.STUCK_AT_LAST
    state: CellState = CellState.RESET
    writes_used: int = field(default=0)

    def __post_init__(self) -> None:
        if self.endurance <= 0:
            raise ValueError("endurance must be positive")

    @property
    def is_faulty(self) -> bool:
        """Whether the cell has exhausted its endurance."""
        return self.writes_used >= self.endurance

    @property
    def stuck_value(self) -> CellState | None:
        """The value a faulty cell is stuck at, or None if healthy."""
        if not self.is_faulty:
            return None
        if self.fault_mode is FaultMode.STUCK_AT_SET:
            return CellState.SET
        if self.fault_mode is FaultMode.STUCK_AT_RESET:
            return CellState.RESET
        return self.state

    def read(self) -> CellState:
        """The cell's effective value (stuck-at aware)."""
        stuck = self.stuck_value
        return self.state if stuck is None else stuck

    def write(self, value: CellState) -> bool:
        """Program the cell; returns True when the write took effect.

        Mirrors the chip's differential-write behaviour: programming a
        cell with the value it already holds costs no endurance.
        """
        value = CellState(value)
        if self.is_faulty:
            return self.read() == value
        if value == self.state:
            return True
        self.state = value
        self.writes_used += 1
        if self.is_faulty and self.fault_mode is not FaultMode.STUCK_AT_LAST:
            # The terminal write may itself be overridden by the stuck level.
            return self.read() == value
        return True
