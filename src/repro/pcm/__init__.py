"""PCM device, wear, and DIMM-organization substrate."""

from .bank import PCMBankArray
from .bits import bits_to_bytes, bytes_to_bits, flip_mask, popcount
from .block import BLOCK_BITS, MemoryBlock, WriteOutcome, apply_write
from .cell import CellState, FaultMode, PCMCell
from .device import PCMEnergy, PCMTimings
from .differential_write import WritePlan, bit_flips, flip_positions, plan_write
from .flip_n_write import FlipNWrite, FlipNWriteResult, naive_flip_count
from .organization import (
    CHIPS_PER_RANK,
    DATA_CHIPS_PER_RANK,
    ECC_BITS_PER_LINE,
    MemoryOrganization,
    PhysicalLocation,
)
from .variation import (
    HIGH_VARIATION_COV,
    PAPER_ENDURANCE_COV,
    PAPER_ENDURANCE_MEAN,
    EnduranceModel,
)

__all__ = [
    "BLOCK_BITS",
    "CHIPS_PER_RANK",
    "DATA_CHIPS_PER_RANK",
    "ECC_BITS_PER_LINE",
    "HIGH_VARIATION_COV",
    "PAPER_ENDURANCE_COV",
    "PAPER_ENDURANCE_MEAN",
    "CellState",
    "EnduranceModel",
    "FaultMode",
    "FlipNWrite",
    "FlipNWriteResult",
    "MemoryBlock",
    "MemoryOrganization",
    "PCMBankArray",
    "PCMCell",
    "PCMEnergy",
    "PCMTimings",
    "PhysicalLocation",
    "WriteOutcome",
    "WritePlan",
    "apply_write",
    "bit_flips",
    "bits_to_bytes",
    "bytes_to_bits",
    "flip_mask",
    "flip_positions",
    "naive_flip_count",
    "plan_write",
    "popcount",
]

from .mlc import (  # noqa: E402  (MLC extension, paper footnote 1)
    MLC_BITS_PER_CELL,
    MLC_CELLS_PER_BLOCK,
    MLC_ENDURANCE_MEAN,
    MLCBankArray,
    MLCWriteOutcome,
    mlc_endurance_model,
)

__all__ += [
    "MLC_BITS_PER_CELL",
    "MLC_CELLS_PER_BLOCK",
    "MLC_ENDURANCE_MEAN",
    "MLCBankArray",
    "MLCWriteOutcome",
    "mlc_endurance_model",
]
