"""Bit-level helpers shared across the PCM model.

A 64-byte memory line is represented in two interchangeable forms:

* ``bytes`` of length 64 -- the architectural view used by compressors
  and the memory controller;
* a numpy ``uint8`` array of 512 zeros/ones -- the cell-level view used
  by the wear model.

Bit ``i`` of the cell-level view is bit ``i % 8`` of byte ``i // 8``
(little-endian bit order), so byte offsets and bit offsets grow in the
same direction.  This matters for the compression window, which is
addressed in bytes but worn in bits.
"""

from __future__ import annotations

import numpy as np


def bytes_to_bits(data: bytes | bytearray | np.ndarray) -> np.ndarray:
    """Expand bytes into an array of single bits (little-endian order)."""
    array = np.frombuffer(bytes(data), dtype=np.uint8)
    return np.unpackbits(array, bitorder="little")


def bits_to_bytes(bits: np.ndarray) -> bytes:
    """Pack an array of single bits (little-endian order) into bytes."""
    if bits.size % 8 != 0:
        raise ValueError(f"bit array length {bits.size} is not a multiple of 8")
    return np.packbits(bits.astype(np.uint8), bitorder="little").tobytes()


def popcount(bits: np.ndarray) -> int:
    """Number of set bits in a 0/1 array."""
    return int(np.count_nonzero(bits))


def flip_mask(old_bits: np.ndarray, new_bits: np.ndarray) -> np.ndarray:
    """Boolean mask of positions where ``new`` differs from ``old``."""
    if old_bits.shape != new_bits.shape:
        raise ValueError(
            f"shape mismatch: {old_bits.shape} vs {new_bits.shape}"
        )
    return old_bits != new_bits
