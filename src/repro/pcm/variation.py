"""Process-variation model for per-cell endurance.

The paper sets the PCM cell lifetime limit to a mean of 1e7 writes with
a coefficient of variation of 0.15 (Table II), raised to 0.25 for the
Figure 13 sensitivity study, following the normal-distribution model of
ECP [8] and FREE-p [10].

We keep the endurance *mean* configurable so that lifetime simulations
can run at laptop scale: normalized lifetimes are invariant to a
uniform endurance rescaling (verified by
``tests/lifetime/test_scaling_invariance.py``) and absolute lifetimes
are extrapolated back through the scale factor.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..rng import as_generator

#: Mean cell endurance assumed by the paper (Table II).
PAPER_ENDURANCE_MEAN = 10**7
#: Coefficient of variation for the main experiments (Table II).
PAPER_ENDURANCE_COV = 0.15
#: Coefficient of variation for the Figure 13 sensitivity study.
HIGH_VARIATION_COV = 0.25


@dataclass(frozen=True)
class EnduranceModel:
    """Normal endurance distribution with a hard lower clamp.

    Attributes:
        mean: Mean endurance in writes (bit flips) per cell.
        cov: Coefficient of variation (sigma / mean).
        floor_fraction: Cells are clamped to at least
            ``floor_fraction * mean`` writes so the normal tail cannot
            produce non-physical (zero or negative) endurance.
    """

    mean: float = PAPER_ENDURANCE_MEAN
    cov: float = PAPER_ENDURANCE_COV
    floor_fraction: float = 0.01

    def __post_init__(self) -> None:
        if self.mean <= 0:
            raise ValueError("endurance mean must be positive")
        if self.cov < 0:
            raise ValueError("coefficient of variation cannot be negative")
        if not 0 < self.floor_fraction <= 1:
            raise ValueError("floor_fraction must be in (0, 1]")

    @property
    def sigma(self) -> float:
        """Standard deviation of the endurance distribution."""
        return self.mean * self.cov

    def sample(
        self,
        shape: int | tuple[int, ...],
        rng: np.random.Generator | np.random.SeedSequence | int,
    ) -> np.ndarray:
        """Draw per-cell endurance limits as a uint64 array.

        ``rng`` is an explicitly threaded generator -- or a seed /
        ``SeedSequence``, normalized via :func:`repro.rng.as_generator`
        -- so every variation draw is attributable to a caller-owned
        stream (no module-level RNG state anywhere in the repo).
        """
        rng = as_generator(rng)
        draws = rng.normal(self.mean, self.sigma, size=shape)
        floor = max(1.0, self.mean * self.floor_fraction)
        return np.maximum(draws, floor).astype(np.uint64)

    def scaled(self, factor: float) -> "EnduranceModel":
        """A copy with the mean scaled by ``factor`` (same CoV)."""
        if factor <= 0:
            raise ValueError("scale factor must be positive")
        return EnduranceModel(self.mean * factor, self.cov, self.floor_fraction)
