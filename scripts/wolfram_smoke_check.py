#!/usr/bin/env python
"""WoLFRaM wear-leveling-backend smoke check for CI.

Gates the two safety rails the ``wl_backend`` knob must never lose, on
short deterministic runs:

1. **Default-backend identity** -- with ``wl_backend="startgap_freep"``
   (the default) the four evaluated systems must still replay the
   frozen golden trace to their exact SHA-256 ``WriteResult`` digests.
   This is what proves the backend seam (movement ``destinations``
   loops, stage injection, remapper selection) left the paper's
   configuration bit-for-bit untouched.
2. **WoLFRaM lockstep fuzz** -- differential campaigns with
   ``--wl-backend wolfram`` force every selected system onto the PAD
   backend and compare the fast pipeline write-for-write against the
   reference model's independent loop-based PAD re-derivation
   (``_RefWolframPAD`` / ``_RefPadRemapper``), across several seeds.

Usage::

    python scripts/wolfram_smoke_check.py [--writes N] [--seeds N]

Exit status 0 when every gate holds, 1 otherwise.  The CI job follows
this script with the backend-comparison benchmark
(``benchmarks/test_wolfram_backend.py``) at smoke scale and uploads
the recorded ``BENCH_wolfram.json``.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core import EVALUATED_SYSTEMS, CompressedPCMController, make_config  # noqa: E402
from repro.pcm import EnduranceModel  # noqa: E402
from repro.traces import SyntheticWorkload, get_profile  # noqa: E402
from repro.validate.fuzz import run_fuzz  # noqa: E402

GOLDEN_FIXTURE = REPO_ROOT / "tests" / "golden" / "golden_trace.json"

#: Systems for the WoLFRaM lockstep campaigns: the full design, the
#: spare-pool variant (PAD remap traffic), and the plain baseline.
FUZZ_SYSTEMS = ("comp_wf", "comp_wf_freep", "baseline")


def check_golden_identity() -> bool:
    """Replay the golden trace on the default backend; compare digests."""
    golden = json.loads(GOLDEN_FIXTURE.read_text())
    trace = golden["trace"]
    ok = True
    for system in EVALUATED_SYSTEMS:
        config = make_config(system, intra_counter_limit=64)
        assert config.wl_backend == "startgap_freep"
        workload = SyntheticWorkload(
            get_profile(trace["workload"]),
            n_lines=trace["n_lines"], seed=trace["seed"],
        )
        controller = CompressedPCMController(
            config=config,
            n_lines=trace["n_lines"],
            endurance_model=EnduranceModel(
                mean=trace["endurance_mean"], cov=trace["endurance_cov"]
            ),
            rng=np.random.default_rng(trace["seed"] + 1),
        )
        digest = hashlib.sha256()
        for write in workload.iter_writes(trace["writes"]):
            result = controller.write(write.line, write.data)
            row = [
                result.physical, int(result.compressed), result.size_bytes,
                result.window_start, result.flips, int(result.died),
                int(result.revived), int(result.lost), result.heuristic_step,
            ]
            digest.update(json.dumps(row).encode())
        expected = golden["systems"][system]["write_results_sha256"]
        if digest.hexdigest() == expected:
            print(f"  golden identity: {system:12} OK")
        else:
            print(f"  golden identity: {system:12} DIGEST MISMATCH")
            ok = False
    return ok


def check_wolfram_lockstep(writes: int, seeds: int) -> bool:
    """Differential fuzz with every campaign forced onto the PAD backend."""
    ok = True
    for seed in range(seeds):
        report = run_fuzz(
            systems=FUZZ_SYSTEMS,
            writes=writes,
            seed=seed,
            wl_backend="wolfram",
        )
        ran = [c for c in report.campaigns if not c.skipped]
        print(
            f"  wolfram lockstep: seed {seed}: {len(ran)} campaigns, "
            f"{sum(c.writes_run for c in ran)} writes, "
            f"{len(report.failures)} divergences"
        )
        for campaign in report.failures:
            print(f"    DIVERGED {campaign.system}/{campaign.scheme}:")
            print(f"    {campaign.divergence}")
            ok = False
    return ok


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--writes", type=int, default=2000,
                        help="writes per lockstep campaign (default 2000)")
    parser.add_argument("--seeds", type=int, default=3,
                        help="independent campaign seeds (default 3)")
    args = parser.parse_args()

    print("gate 1: golden-digest identity on the default backend")
    golden_ok = check_golden_identity()
    print("gate 2: WoLFRaM PAD lockstep fuzz")
    lockstep_ok = check_wolfram_lockstep(args.writes, args.seeds)

    if golden_ok and lockstep_ok:
        print("wolfram smoke check: all gates hold")
        return 0
    print("wolfram smoke check: FAILED")
    return 1


if __name__ == "__main__":
    sys.exit(main())
