#!/usr/bin/env python
"""Memory-service smoke check for CI: kill a shard worker, recover exactly.

Boots the 4-shard multi-process :class:`~repro.service.MemoryService`,
drives a memcached-shaped workload through it, SIGTERM-kills one shard
worker mid-run (no graceful shutdown -- the point is surviving a
crash), and asserts that

* the service absorbs the death through its quarantine-and-replay
  recovery (exactly one recovery, telemetry moved to ``attempt-1/``),
* the final fleet view is *bit-identical* to an uninterrupted
  in-process golden run (:class:`~repro.service.ShardedController`
  on the same stream -- the documented equivalence chain), and
* the JSONL telemetry tells the story: ``service_start``,
  ``fleet_heartbeat``s, one ``shard_recovered``, ``service_end``.

Usage::

    python scripts/service_smoke_check.py [--work-dir DIR]

Exit status 0 on exact recovery, 1 on any mismatch or timeout.  The
run is tiny (tens of lines, a few thousand requests) so the whole
check takes seconds; CI adds a hard ``timeout-minutes`` on top.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.config import comp_wf  # noqa: E402
from repro.service import (  # noqa: E402
    MemoryService,
    ShardedController,
    make_stream,
)

RUN = dict(endurance_mean=40.0, endurance_cov=0.2, seed=17, n_banks=4)
LINES = 64
SHARDS = 4
REQUESTS = 3_000
BATCH = 64
VICTIM = 1
#: Kill the victim once this many requests have been routed.
KILL_AFTER = REQUESTS // 2
KILL_TIMEOUT = 30.0


def golden_run(stream):
    fleet = ShardedController(comp_wf(), LINES, shards=SHARDS, **RUN)
    for start in range(0, len(stream), BATCH):
        fleet.write_batch(stream[start:start + BATCH])
    return fleet


def kill_worker(service: MemoryService, shard: int) -> None:
    pid = service.worker_pid(shard)
    os.kill(pid, signal.SIGTERM)
    deadline = time.monotonic() + KILL_TIMEOUT
    while service._workers[shard].is_alive():
        if time.monotonic() > deadline:
            raise SystemExit(f"shard {shard} worker (pid {pid}) refused to die")
        time.sleep(0.01)
    print(f"killed shard {shard} worker (pid {pid}) after "
          f"{service.requests_routed} routed requests")


def check(work_dir: Path) -> int:
    stream = [
        (r.line, r.data)
        for r in make_stream("memcached", LINES, RUN["seed"]).iter_requests(REQUESTS)
    ]
    print(f"golden: in-process {SHARDS}-shard fleet over "
          f"{REQUESTS} memcached requests ...")
    golden = golden_run(stream)

    telemetry = work_dir / "telemetry"
    killed = False
    with MemoryService(
        comp_wf(), LINES, shards=SHARDS, telemetry_dir=str(telemetry),
        heartbeat_interval=250, fleet_interval=250, **RUN,
    ) as service:
        for start in range(0, len(stream), BATCH):
            if not killed and service.requests_routed >= KILL_AFTER:
                kill_worker(service, VICTIM)
                killed = True
            service.submit(stream[start:start + BATCH])
        result = service.stop()
    if not killed:
        print("never reached the kill point; check KILL_AFTER", file=sys.stderr)
        return 1

    failures = []
    if result.recoveries != 1:
        failures.append(f"expected exactly 1 recovery, saw {result.recoveries}")
    if result.requests_routed != REQUESTS:
        failures.append(
            f"routed {result.requests_routed} of {REQUESTS} requests"
        )
    if result.stats != golden.stats:
        failures.append(
            f"fleet stats diverged:\n  golden  {golden.stats}\n"
            f"  service {result.stats}"
        )
    if result.shard_stats != golden.shard_stats():
        diverged = [
            shard for shard, (ours, theirs) in enumerate(
                zip(result.shard_stats, golden.shard_stats())
            ) if ours != theirs
        ]
        failures.append(f"per-shard stats diverged for shards {diverged}")
    if result.dead_fraction != golden.dead_fraction:
        failures.append(
            f"dead fraction {result.dead_fraction} != {golden.dead_fraction}"
        )

    quarantine = telemetry / f"shard-{VICTIM}" / "attempt-1" / "events.jsonl"
    if not quarantine.exists():
        failures.append(f"missing quarantined telemetry at {quarantine}")
    fleet_events = [
        json.loads(line)
        for line in (telemetry / "fleet.jsonl").read_text().splitlines()
    ]
    kinds = [event["event"] for event in fleet_events]
    recovered = [e for e in fleet_events if e["event"] == "shard_recovered"]
    if kinds[0] != "service_start" or kinds[-1] != "service_end":
        failures.append(f"malformed fleet event stream: {kinds}")
    if "fleet_heartbeat" not in kinds:
        failures.append("no fleet_heartbeat events emitted")
    if len(recovered) != 1 or recovered[0]["shard"] != VICTIM:
        failures.append(f"bad shard_recovered events: {recovered}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print(f"OK: exact recovery -- fleet stats identical after killing "
          f"shard {VICTIM} ({result.stats.stored_writes} stored writes, "
          f"{result.stats.lost_writes} lost, "
          f"dead fraction {result.dead_fraction:.4f})")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--work-dir", type=Path, default=None)
    args = parser.parse_args(argv)
    if args.work_dir is not None:
        args.work_dir.mkdir(parents=True, exist_ok=True)
        return check(args.work_dir)
    with tempfile.TemporaryDirectory(prefix="service-smoke-") as tmp:
        return check(Path(tmp))


if __name__ == "__main__":
    raise SystemExit(main())
