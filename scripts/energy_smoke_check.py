#!/usr/bin/env python
"""Energy-subsystem smoke check for CI.

Gates the conservation properties the energy model and the encoding
stages (:mod:`repro.energy`) must never lose, on short deterministic
runs:

1. **Disabled-encoding identity** -- a controller with
   ``encoding="none"`` and the same controller with an attached
   identity-parameter encoder (identity is the only coset) must agree
   stat for stat and cell for cell.  This is what keeps the golden
   traces and the fuzz corpus valid while the encoding stage sits in
   every write path.
2. **Flip/wear conservation** -- for encoded and non-encoded systems
   alike, the flips the stats counted must equal the wear the array
   accumulated (``total_flips == counts.sum()``): the energy model
   prices those counters, so a drift here silently corrupts every
   picojoule figure.
3. **Merge commutativity** -- the energy counters must merge
   commutatively across shards, and pricing must be additive over the
   merge: ``breakdown(a ⊕ b) == breakdown(a) + breakdown(b)``.
   Fleet-level energy telemetry is only sound if the merged view prices
   exactly like the sum of the shard views.

Usage::

    python scripts/energy_smoke_check.py [--writes N]

Exit status 0 when every gate holds, 1 otherwise.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core import CompressedPCMController  # noqa: E402
from repro.energy import EnergyModel, WireEncoder  # noqa: E402
from repro.engine import resolve_config  # noqa: E402
from repro.pcm import EnduranceModel  # noqa: E402
from repro.traces import SyntheticWorkload, get_profile  # noqa: E402

LINES = 48
ENDURANCE = 40.0
SEED = 7
WORKLOAD = "gcc"

ENERGY_COUNTERS = (
    "set_flips", "reset_flips",
    "encoding_flag_set_flips", "encoding_flag_reset_flips",
    "encoded_words", "repair_commits",
)


def build(system: str) -> CompressedPCMController:
    return CompressedPCMController(
        config=resolve_config(system),
        n_lines=LINES,
        endurance_model=EnduranceModel(mean=ENDURANCE, cov=0.2),
        rng=np.random.default_rng(SEED),
        n_banks=4,
    )


def drive(controller: CompressedPCMController, writes: int) -> None:
    workload = SyntheticWorkload(
        get_profile(WORKLOAD), n_lines=LINES, seed=SEED
    )
    for write in workload.iter_writes(writes):
        controller.write(write.line, write.data)


def check(writes: int) -> int:
    print(f"replaying {writes} {WORKLOAD} writes over {LINES} lines ...")

    # Gate 1: disabled encoding == attached identity-parameter encoder.
    plain = build("comp_wf")
    drive(plain, writes)
    identity = build("comp_wf")
    identity.engine.encoder = WireEncoder(
        len(identity.engine.metadata), transforms=("identity",)
    )
    drive(identity, writes)
    if plain.stats != identity.stats:
        print("FAIL: identity-parameter encoder perturbed the stats",
              file=sys.stderr)
        return 1
    if plain.memory.stored.tolist() != identity.memory.stored.tolist():
        print("FAIL: identity-parameter encoder perturbed stored cells",
              file=sys.stderr)
        return 1
    print("OK: identity-parameter encoding is bit-identical to encoding off")

    # Gate 2: flip/wear conservation, encoded and non-encoded alike.
    for system in ("comp_wf", "comp_wf_wire", "comp_coset"):
        controller = build(system)
        drive(controller, writes)
        counted = controller.stats.total_flips
        worn = int(controller.memory.counts.sum())
        if counted != worn:
            print(f"FAIL: {system}: counted {counted} flips but the array "
                  f"wore {worn} cells", file=sys.stderr)
            return 1
    print("OK: total_flips == accumulated cell wear for "
          "comp_wf / comp_wf_wire / comp_coset")

    # Gate 3: commutative merge, additive pricing.
    shard_a = build("comp_wf_wire")
    drive(shard_a, writes)
    shard_b = build("comp_coset")
    drive(shard_b, writes)
    a, b = shard_a.stats, shard_b.stats
    ab, ba = a.merge(b), b.merge(a)
    if ab != ba:
        print("FAIL: stats merge is not commutative", file=sys.stderr)
        return 1
    for counter in ENERGY_COUNTERS:
        merged = getattr(ab, counter)
        summed = getattr(a, counter) + getattr(b, counter)
        if merged != summed:
            print(f"FAIL: merged {counter} {merged} != shard sum {summed}",
                  file=sys.stderr)
            return 1
    model = EnergyModel()
    merged_pj = model.breakdown(ab).total_pj
    summed_pj = model.breakdown(a).total_pj + model.breakdown(b).total_pj
    if abs(merged_pj - summed_pj) > 1e-6 * max(summed_pj, 1.0):
        print(f"FAIL: merged pricing {merged_pj} pJ != shard sum "
              f"{summed_pj} pJ", file=sys.stderr)
        return 1
    print(f"OK: energy counters merge commutatively and price additively "
          f"({merged_pj:.0f} pJ fleet total)")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--writes", type=int, default=1500)
    args = parser.parse_args(argv)
    return check(args.writes)


if __name__ == "__main__":
    raise SystemExit(main())
