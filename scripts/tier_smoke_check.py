#!/usr/bin/env python
"""Hybrid DRAM-tier smoke check for CI.

Gates the two properties the tier subsystem (:mod:`repro.tier`) must
never lose, on a short memcached-shaped workload:

1. **Bit-identity at capacity 0** -- a fleet built with ``tier_lines=0``
   must be indistinguishable, stat for stat and line for line, from a
   fleet built with no tier argument at all.  This is what keeps every
   golden trace and fuzz corpus valid.
2. **Conservation with the tier on** -- with a real DRAM capacity the
   tier must (a) balance its write accounting
   (``pcm_demand + absorbed - evictions == requests``), (b) answer
   every read with the last written content, before *and* after a full
   flush, and (c) never increase post-flush PCM write traffic.

Usage::

    python scripts/tier_smoke_check.py [--requests N] [--tier-lines K]

Exit status 0 when every gate holds, 1 otherwise.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.config import comp_wf  # noqa: E402
from repro.service import ShardedController, make_stream  # noqa: E402

LINES = 96
SHARDS = 2
BATCH = 32
SEED = 11
ENDURANCE_MEAN = 2000.0
WORKLOAD = "memcached"


def build_fleet(tier_lines: int | None) -> ShardedController:
    kwargs = {} if tier_lines is None else {"tier_lines": tier_lines}
    return ShardedController(
        comp_wf(), LINES, shards=SHARDS, endurance_mean=ENDURANCE_MEAN,
        seed=SEED, n_banks=8, **kwargs,
    )


def drive(fleet: ShardedController, stream) -> None:
    for start in range(0, len(stream), BATCH):
        fleet.write_batch(stream[start:start + BATCH])


def check(requests: int, tier_lines: int) -> int:
    stream = [
        (r.line, r.data)
        for r in make_stream(WORKLOAD, LINES, SEED).iter_requests(requests)
    ]
    shadow = {line: data for line, data in stream}

    print(f"replaying {requests} {WORKLOAD} requests over {LINES} lines "
          f"x {SHARDS} shards ...")
    bare = build_fleet(None)
    drive(bare, stream)

    # Gate 1: tier_lines=0 is the bare fleet, bit for bit.
    zero = build_fleet(0)
    drive(zero, stream)
    if bare.stats != zero.stats:
        print("FAIL: tier_lines=0 fleet stats differ from bare",
              file=sys.stderr)
        return 1
    for line in range(LINES):
        if bare.read(line) != zero.read(line):
            print(f"FAIL: tier_lines=0 line {line} differs from bare",
                  file=sys.stderr)
            return 1
    print("OK: tier_lines=0 is bit-identical to the bare fleet")

    # Gate 2: conservation with a real capacity.
    hybrid = build_fleet(tier_lines)
    drive(hybrid, stream)
    stats = hybrid.stats
    balance = (
        stats.demand_writes
        + stats.tier_pcm_writes_avoided
        - stats.tier_evictions
    )
    if balance != requests:
        print(f"FAIL: accounting imbalance: {balance} != {requests}",
              file=sys.stderr)
        return 1
    for line, expected in shadow.items():
        if hybrid.read(line) != expected:
            print(f"FAIL: pre-flush read of line {line} is stale",
                  file=sys.stderr)
            return 1
    hybrid.flush_tiers()
    for line, expected in shadow.items():
        if hybrid.read(line) != expected:
            print(f"FAIL: post-flush read of line {line} is stale",
                  file=sys.stderr)
            return 1
    pcm_writes = hybrid.stats.demand_writes
    if pcm_writes > requests:
        print(f"FAIL: tier increased PCM traffic ({pcm_writes} > {requests})",
              file=sys.stderr)
        return 1
    reduction = 1.0 - pcm_writes / requests
    print(f"OK: tier_lines={tier_lines} conserved every write; "
          f"PCM traffic {pcm_writes}/{requests} "
          f"({reduction:.1%} reduction)")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--requests", type=int, default=1500)
    parser.add_argument("--tier-lines", type=int, default=8)
    args = parser.parse_args(argv)
    return check(args.requests, args.tier_lines)


if __name__ == "__main__":
    raise SystemExit(main())
