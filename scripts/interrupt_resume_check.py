#!/usr/bin/env python
"""Interrupt/resume equivalence check for CI.

Proves the checkpoint machinery end-to-end at the *process* level, not
just in-process: a worker subprocess is SIGTERM-killed mid-run (no
graceful shutdown -- the whole point is surviving a crash), a second
worker resumes from the newest on-disk checkpoint, and the resumed
:class:`~repro.lifetime.LifetimeResult` must be bit-identical to an
uninterrupted golden run computed in this process.

Orchestrator (default)::

    python scripts/interrupt_resume_check.py [--work-dir DIR]

Worker (spawned by the orchestrator)::

    python scripts/interrupt_resume_check.py --worker \
        --checkpoint-dir DIR --result PATH [--resume]

Exit status 0 on bit-identical equivalence, 1 on any mismatch or
timeout.  The run parameters are tiny (the memory dies after a few
thousand writes) so the whole check takes seconds; CI adds a hard
``timeout-minutes`` on top.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.lifetime import build_simulator, latest_checkpoint  # noqa: E402

# Small enough to die in a few thousand writes, large enough that the
# worker is still mid-run when the first checkpoint lands.
RUN = dict(system="comp_wf", workload="milc", n_lines=24,
           endurance_mean=12.0, seed=3)
BUDGET = 600_000
CHECKPOINT_EVERY = 500
#: Batched epochs exercise the out-of-order scheduler, so the
#: equivalence check also pins that its observability counters
#: (batch_waves / batch_wave_ops / batch_wave_width_max, all part of
#: the compared LifetimeResult) survive the kill and resume.  The
#: golden run must checkpoint at the same cadence: epochs are capped
#: at cadence boundaries, so the cadence shapes the wave structure.
BATCH = 8
#: SIGTERM once a checkpoint at >= this write count exists on disk.
KILL_AFTER_WRITES = 1_000
DEADLINE_SECONDS = 240.0


def run_worker(checkpoint_dir: Path, result_path: Path, resume: bool) -> int:
    resume_from = latest_checkpoint(checkpoint_dir) if resume else None
    if resume and resume_from is None:
        print("worker: --resume but no checkpoint found", file=sys.stderr)
        return 1
    simulator = build_simulator(**RUN)
    result = simulator.run(
        max_writes=BUDGET,
        batch=BATCH,
        checkpoint_dir=checkpoint_dir,
        checkpoint_interval=CHECKPOINT_EVERY,
        resume_from=resume_from,
    )
    payload = json.dumps(dataclasses.asdict(result), sort_keys=True)
    tmp = result_path.with_suffix(".tmp")
    tmp.write_text(payload)
    os.replace(tmp, result_path)
    return 0


def spawn_worker(checkpoint_dir: Path, result_path: Path,
                 resume: bool) -> subprocess.Popen:
    argv = [sys.executable, __file__, "--worker",
            "--checkpoint-dir", str(checkpoint_dir),
            "--result", str(result_path)]
    if resume:
        argv.append("--resume")
    return subprocess.Popen(argv)


def wait_for_checkpoint(checkpoint_dir: Path, child: subprocess.Popen,
                        deadline: float) -> Path:
    """Poll until a checkpoint at >= KILL_AFTER_WRITES writes exists."""
    while time.monotonic() < deadline:
        newest = latest_checkpoint(checkpoint_dir)
        if newest is not None:
            writes = int(newest.stem.split("-")[1])
            if writes >= KILL_AFTER_WRITES:
                return newest
        if child.poll() is not None:
            raise SystemExit(
                "worker exited before reaching the kill point "
                f"(status {child.returncode})"
            )
        time.sleep(0.02)
    raise SystemExit("timed out waiting for the worker's checkpoint")


def orchestrate(work_dir: Path) -> int:
    deadline = time.monotonic() + DEADLINE_SECONDS
    checkpoint_dir = work_dir / "checkpoints"
    result_path = work_dir / "result.json"

    print(f"golden: uninterrupted in-process run of {RUN} ...")
    golden = build_simulator(**RUN).run(
        max_writes=BUDGET,
        batch=BATCH,
        checkpoint_dir=work_dir / "golden-checkpoints",
        checkpoint_interval=CHECKPOINT_EVERY,
    )
    if not golden.failed:
        print("golden run never failed; check the run parameters",
              file=sys.stderr)
        return 1
    if golden.batch_waves <= 0:
        print("golden run scheduled no waves; check BATCH", file=sys.stderr)
        return 1
    print(f"golden: failed after {golden.writes_issued} writes "
          f"({golden.batch_waves} waves)")

    child = spawn_worker(checkpoint_dir, result_path, resume=False)
    try:
        newest = wait_for_checkpoint(checkpoint_dir, child, deadline)
    finally:
        if child.poll() is None:
            child.send_signal(signal.SIGTERM)  # crash, no cleanup
    child.wait(timeout=30)
    print(f"killed worker (pid {child.pid}) after checkpoint {newest.name}")
    if result_path.exists():
        print("worker finished before the kill; check KILL_AFTER_WRITES",
              file=sys.stderr)
        return 1

    resumed_child = spawn_worker(checkpoint_dir, result_path, resume=True)
    remaining = max(1.0, deadline - time.monotonic())
    status = resumed_child.wait(timeout=remaining)
    if status != 0:
        print(f"resumed worker failed with status {status}", file=sys.stderr)
        return 1

    resumed = json.loads(result_path.read_text())
    expected = json.loads(
        json.dumps(dataclasses.asdict(golden), sort_keys=True)
    )
    if resumed == expected:
        print(f"OK: resumed run is bit-identical "
              f"({resumed['writes_issued']} writes, "
              f"{resumed['total_flips']} flips)")
        return 0
    mismatched = sorted(
        key for key in expected
        if resumed.get(key) != expected[key]
    )
    print(f"MISMATCH in fields {mismatched}", file=sys.stderr)
    for key in mismatched:
        print(f"  {key}: golden={expected[key]!r} "
              f"resumed={resumed.get(key)!r}", file=sys.stderr)
    return 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--worker", action="store_true")
    parser.add_argument("--checkpoint-dir", type=Path)
    parser.add_argument("--result", type=Path)
    parser.add_argument("--resume", action="store_true")
    parser.add_argument("--work-dir", type=Path, default=None)
    args = parser.parse_args(argv)

    if args.worker:
        if not args.checkpoint_dir or not args.result:
            parser.error("--worker requires --checkpoint-dir and --result")
        return run_worker(args.checkpoint_dir, args.result, args.resume)

    if args.work_dir is not None:
        args.work_dir.mkdir(parents=True, exist_ok=True)
        return orchestrate(args.work_dir)
    with tempfile.TemporaryDirectory(prefix="interrupt-resume-") as tmp:
        return orchestrate(Path(tmp))


if __name__ == "__main__":
    raise SystemExit(main())
